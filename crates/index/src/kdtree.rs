//! Multi-resolution k-d tree.
//!
//! Each node tracks the number of points in its region and a tight
//! axis-aligned bounding box (the "multi-resolution" features of Deng &
//! Moore that tKDC builds on). The split axis cycles through the
//! dimensions by depth; the split value defaults to the paper's
//! trimmed-midpoint rule `(x⁽¹⁰⁾ + x⁽⁹⁰⁾)/2` (§3.7), with median splits
//! available for the ablation study.
//!
//! Storage layout: nodes live in a flat arena with `u32` child links,
//! bounding boxes in two contiguous `Vec<f64>` side arrays (`d` values per
//! node), and the training points are reordered so every node owns a
//! contiguous range — leaf scans are sequential memory reads.

use crate::bbox;
use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::order::quickselect;
use tkdc_common::Matrix;

/// How a node picks its split value along the chosen axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitRule {
    /// The paper's rule: midpoint of the 10th and 90th percentile
    /// (fast to identify tightly constrained regions under kernels with
    /// rapid falloff).
    TrimmedMidpoint,
    /// Classic balanced k-d tree median split (ablation comparator).
    Median,
}

const NO_CHILD: u32 = u32::MAX;

/// Flat serialized form of a [`KdTree`] for model persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct KdTreeRaw {
    /// Dataset dimensionality.
    pub dim: usize,
    /// Leaf capacity the tree was built with.
    pub leaf_size: usize,
    /// Reordered row-major points.
    pub points: Vec<f64>,
    /// Per-node `(start, end, left, right)`; `u32::MAX` marks a leaf.
    pub nodes: Vec<[u32; 4]>,
    /// Bounding-box minima, `dim` values per node.
    pub node_lo: Vec<f64>,
    /// Bounding-box maxima, `dim` values per node.
    pub node_hi: Vec<f64>,
    /// Per-point weights in the tree's reordered row order; empty means
    /// every point carries unit weight (the pre-coreset format).
    pub weights: Vec<f64>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Start of this node's point range (row index into `points`).
    start: u32,
    /// One past the end of the point range.
    end: u32,
    /// Left child arena index, or `NO_CHILD` for leaves.
    left: u32,
    /// Right child arena index, or `NO_CHILD` for leaves.
    right: u32,
}

/// A k-d tree over an owned, reordered copy of the training points.
#[derive(Debug, Clone)]
pub struct KdTree {
    dim: usize,
    leaf_size: usize,
    /// Row-major reordered points; each node owns rows `[start, end)`.
    points: Vec<f64>,
    n_points: usize,
    nodes: Vec<Node>,
    /// Bounding-box minima, `dim` values per node.
    node_lo: Vec<f64>,
    /// Bounding-box maxima, `dim` values per node.
    node_hi: Vec<f64>,
    /// Per-point weights in reordered row order; empty for unweighted
    /// trees (every point counts once).
    weights: Vec<f64>,
    /// Per-node total mass `Σ w_i` over the node's range; empty for
    /// unweighted trees (mass is then the point count).
    masses: Vec<f64>,
    /// Dimension-major (SoA) copies of every leaf's point block,
    /// concatenated: leaf with `soa_off[id] = o` and `r` rows stores
    /// coordinate `j` of its point `i` at `soa[o + j·r + i]`. Derived
    /// state (rebuilt on load, never serialized); doubles point storage
    /// but gives `Kernel::sum_block_soa` stride-1 columns at any `d`.
    soa: Vec<f64>,
    /// Per-node offset into `soa`; `usize::MAX` for internal nodes.
    soa_off: Vec<usize>,
}

impl KdTree {
    /// Builds a tree over the dataset.
    ///
    /// `leaf_size` caps how many points a leaf may hold before splitting;
    /// the tKDC prototype uses small leaves so index bounds stay tight.
    ///
    /// # Errors
    /// Fails on an empty dataset or `leaf_size == 0`.
    pub fn build(data: &Matrix, leaf_size: usize, rule: SplitRule) -> Result<Self> {
        Self::build_impl(data, Vec::new(), leaf_size, rule)
    }

    /// Builds a tree over *weighted* points: row `i` of `data` carries
    /// mass `weights[i]` (the number of original points a coreset point
    /// stands in for). Node masses replace node counts in every density
    /// bound computed over the tree; the weights are reordered alongside
    /// the points so `node_weights` stays aligned with `node_block`.
    ///
    /// # Errors
    /// Fails on the same conditions as [`Self::build`], on a length
    /// mismatch, or on non-finite / non-positive weights.
    pub fn build_weighted(
        data: &Matrix,
        weights: &[f64],
        leaf_size: usize,
        rule: SplitRule,
    ) -> Result<Self> {
        if weights.len() != data.rows() {
            return Err(invalid_param(
                "weights",
                format!(
                    "length {} does not match {} data rows",
                    weights.len(),
                    data.rows()
                ),
            ));
        }
        for &w in weights {
            if !w.is_finite() || w <= 0.0 {
                return Err(invalid_param(
                    "weights",
                    format!("weights must be positive and finite, got {w}"),
                ));
            }
        }
        Self::build_impl(data, weights.to_vec(), leaf_size, rule)
    }

    fn build_impl(
        data: &Matrix,
        weights: Vec<f64>,
        leaf_size: usize,
        rule: SplitRule,
    ) -> Result<Self> {
        if data.rows() == 0 {
            return Err(Error::EmptyInput("kd-tree training data"));
        }
        if leaf_size == 0 {
            return Err(invalid_param("leaf_size", "must be at least 1"));
        }
        let dim = data.cols();
        let n = data.rows();
        let mut tree = KdTree {
            dim,
            leaf_size,
            points: data.as_slice().to_vec(),
            n_points: n,
            nodes: Vec::with_capacity(2 * n / leaf_size.max(1) + 1),
            node_lo: Vec::new(),
            node_hi: Vec::new(),
            weights,
            masses: Vec::new(),
            soa: Vec::new(),
            soa_off: Vec::new(),
        };
        // Scratch buffer reused by split-value selection at every level.
        let mut scratch: Vec<f64> = Vec::with_capacity(n);
        tree.build_node(0, n, 0, rule, &mut scratch);
        // Node masses are computed in a post-pass over the *final* point
        // order (not during the recursion, where later partitions would
        // still permute the range): summation order is then identical to
        // `from_raw_parts`' recomputation, keeping built and reloaded
        // trees bit-for-bit equal.
        if !tree.weights.is_empty() {
            tree.masses = tree
                .nodes
                .iter()
                .map(|nd| {
                    // CAST: u32 offsets widen to usize
                    tree.weights[nd.start as usize..nd.end as usize]
                        .iter()
                        .sum()
                })
                .collect();
        }
        tree.build_soa();
        Ok(tree)
    }

    /// Builds the dimension-major leaf cache. Leaves partition the row
    /// range exactly (internal nodes always cover both children), so
    /// the cache is one `n·d` buffer with per-leaf offsets.
    fn build_soa(&mut self) {
        let d = self.dim;
        // Size by the actual leaf rows (equal to `n` for any tree the
        // builder produces; sized defensively so a shallowly-validated
        // raw load can never index out of bounds here).
        let total_rows: usize = self
            .nodes
            .iter()
            .filter(|n| n.left == NO_CHILD)
            .map(|n| (n.end - n.start) as usize) // CAST: u32 range widens to usize
            .sum();
        let mut soa = vec![0.0; total_rows * d];
        let mut soa_off = vec![usize::MAX; self.nodes.len()];
        let mut at = 0usize;
        for id in 0..self.nodes.len() {
            if self.nodes[id].left != NO_CHILD {
                continue;
            }
            // CAST: u32 offsets widen to usize
            let (start, end) = (self.nodes[id].start as usize, self.nodes[id].end as usize);
            let rows = end - start;
            soa_off[id] = at;
            for i in 0..rows {
                let row = &self.points[(start + i) * d..(start + i + 1) * d];
                for (j, &v) in row.iter().enumerate() {
                    soa[at + j * rows + i] = v;
                }
            }
            at += rows * d;
        }
        self.soa = soa;
        self.soa_off = soa_off;
    }

    /// Recursively builds the subtree over rows `[start, end)` at `depth`.
    /// Returns the arena index of the created node.
    fn build_node(
        &mut self,
        start: usize,
        end: usize,
        depth: usize,
        rule: SplitRule,
        scratch: &mut Vec<f64>,
    ) -> u32 {
        let idx = self.nodes.len() as u32; // CAST: node arena stays far below 2^32 entries
        self.nodes.push(Node {
            start: start as u32, // CAST: point indices fit u32
            end: end as u32,     // CAST: point indices fit u32
            left: NO_CHILD,
            right: NO_CHILD,
        });
        // Tight bounding box over the node's points.
        let (lo_off, _hi_off) = (self.node_lo.len(), self.node_hi.len());
        self.node_lo
            .extend(std::iter::repeat_n(f64::INFINITY, self.dim));
        self.node_hi
            .extend(std::iter::repeat_n(f64::NEG_INFINITY, self.dim));
        for r in start..end {
            let row = &self.points[r * self.dim..(r + 1) * self.dim];
            for c in 0..self.dim {
                if row[c] < self.node_lo[lo_off + c] {
                    self.node_lo[lo_off + c] = row[c];
                }
                if row[c] > self.node_hi[lo_off + c] {
                    self.node_hi[lo_off + c] = row[c];
                }
            }
        }
        if end - start <= self.leaf_size {
            return idx;
        }

        // Pick a split axis (cycling) and value; skip axes where all
        // coordinates coincide. After `dim` failures the points are all
        // identical and the node stays a leaf.
        let mut split: Option<(usize, f64)> = None;
        for probe in 0..self.dim {
            let axis = (depth + probe) % self.dim;
            let lo = self.node_lo[lo_off + axis];
            let hi = self.node_hi[lo_off + axis];
            if hi <= lo {
                continue;
            }
            let value = self.split_value(start, end, axis, rule, scratch);
            // Clamp into the open interval so both sides are non-empty
            // whenever the axis has spread.
            if value > lo && value <= hi {
                split = Some((axis, value));
                break;
            }
            // Degenerate split value (e.g. heavily skewed data): fall back
            // to the box midpoint of this axis.
            let mid = 0.5 * (lo + hi);
            if mid > lo && mid <= hi {
                split = Some((axis, mid));
                break;
            }
        }
        let Some((axis, value)) = split else {
            return idx; // all points identical
        };

        let mid = self.partition(start, end, axis, value);
        // A valid split must separate; the clamping above guarantees at
        // least one point strictly below `value`, but guard anyway.
        if mid == start || mid == end {
            return idx;
        }
        let left = self.build_node(start, mid, depth + 1, rule, scratch);
        let right = self.build_node(mid, end, depth + 1, rule, scratch);
        self.nodes[idx as usize].left = left; // CAST: u32 id widens to usize
        self.nodes[idx as usize].right = right; // CAST: u32 id widens to usize
        idx
    }

    /// Split value along `axis` for rows `[start, end)`.
    fn split_value(
        &self,
        start: usize,
        end: usize,
        axis: usize,
        rule: SplitRule,
        scratch: &mut Vec<f64>,
    ) -> f64 {
        scratch.clear();
        for r in start..end {
            scratch.push(self.points[r * self.dim + axis]);
        }
        let n = scratch.len();
        match rule {
            SplitRule::TrimmedMidpoint => {
                // (x^(10) + x^(90)) / 2 with 1-based ceil ranks.
                let r10 = ((n as f64 * 0.10).ceil() as usize).clamp(1, n) - 1; // CAST: rank in [0, n] after clamp
                let r90 = ((n as f64 * 0.90).ceil() as usize).clamp(1, n) - 1; // CAST: rank in [0, n] after clamp
                let p10 = quickselect(scratch, r10);
                let p90 = quickselect(scratch, r90);
                0.5 * (p10 + p90)
            }
            SplitRule::Median => {
                let rank = n / 2;
                quickselect(scratch, rank)
            }
        }
    }

    /// Hoare-style partition of rows `[start, end)` by `coord < value`;
    /// returns the first index of the right side.
    fn partition(&mut self, start: usize, end: usize, axis: usize, value: f64) -> usize {
        let d = self.dim;
        let mut i = start;
        let mut j = end;
        while i < j {
            if self.points[i * d + axis] < value {
                i += 1;
            } else {
                j -= 1;
                // Swap whole rows i and j (and their weights, so the
                // weight vector stays row-aligned through every split).
                for c in 0..d {
                    self.points.swap(i * d + c, j * d + c);
                }
                if !self.weights.is_empty() {
                    self.weights.swap(i, j);
                }
            }
        }
        i
    }

    /// Dataset dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// True when the tree indexes no points (never constructed — `build`
    /// rejects empty input — but required by convention).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// Maximum points per leaf the tree was built with.
    #[inline]
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Number of arena nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Arena index of the root node.
    #[inline]
    pub fn root(&self) -> u32 {
        0
    }

    /// Number of points under node `id`.
    #[inline]
    pub fn count(&self, id: u32) -> usize {
        let n = &self.nodes[id as usize]; // CAST: u32 id widens to usize
        (n.end - n.start) as usize // CAST: u32 range widens to usize
    }

    /// True when the tree carries per-point weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Total mass under node `id`: `Σ w_i` over the node's points for a
    /// weighted tree, the plain point count otherwise. For unweighted
    /// trees this is bit-identical to `count(id) as f64`, so density
    /// bounds phrased in masses reproduce the count-based bounds exactly.
    #[inline]
    pub fn node_mass(&self, id: u32) -> f64 {
        if self.masses.is_empty() {
            self.count(id) as f64 // CAST: point counts are far below 2^53
        } else {
            self.masses[id as usize] // CAST: u32 id widens to usize
        }
    }

    /// Total mass of the whole tree (`node_mass` of the root): the
    /// weighted stand-in for `len()` in density normalization.
    #[inline]
    pub fn total_mass(&self) -> f64 {
        self.node_mass(self.root())
    }

    /// Per-point weights under node `id`, aligned row-for-row with
    /// [`Self::node_block`]; `None` for unweighted trees.
    #[inline]
    pub fn node_weights(&self, id: u32) -> Option<&[f64]> {
        if self.weights.is_empty() {
            return None;
        }
        let n = &self.nodes[id as usize]; // CAST: u32 id widens to usize
        Some(&self.weights[n.start as usize..n.end as usize]) // CAST: u32 offsets widen to usize
    }

    /// All per-point weights in reordered row order; `None` for
    /// unweighted trees. Exposed for model persistence.
    #[inline]
    pub fn weights(&self) -> Option<&[f64]> {
        if self.weights.is_empty() {
            None
        } else {
            Some(&self.weights)
        }
    }

    /// `(start, end)` row range this node owns within the tree's
    /// reordered point order (`node_points` yields exactly these rows).
    #[inline]
    pub fn node_range(&self, id: u32) -> (usize, usize) {
        let n = &self.nodes[id as usize]; // CAST: u32 id widens to usize
        (n.start as usize, n.end as usize) // CAST: u32 offsets widen to usize
    }

    /// `(left, right)` child ids, or `None` for a leaf.
    #[inline]
    pub fn children(&self, id: u32) -> Option<(u32, u32)> {
        let n = &self.nodes[id as usize]; // CAST: u32 id widens to usize
        if n.left == NO_CHILD {
            None
        } else {
            Some((n.left, n.right))
        }
    }

    /// True when node `id` is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: u32) -> bool {
        self.nodes[id as usize].left == NO_CHILD // CAST: u32 id widens to usize
    }

    /// Bounding-box minima of node `id`.
    #[inline]
    pub fn box_lo(&self, id: u32) -> &[f64] {
        let off = id as usize * self.dim; // CAST: u32 id widens to usize
        &self.node_lo[off..off + self.dim]
    }

    /// Bounding-box maxima of node `id`.
    #[inline]
    pub fn box_hi(&self, id: u32) -> &[f64] {
        let off = id as usize * self.dim; // CAST: u32 id widens to usize
        &self.node_hi[off..off + self.dim]
    }

    /// Scaled squared distance bounds `(u_min, u_max)` from `x` to the
    /// bounding box of node `id` (Eq. 6's distance vectors).
    #[inline]
    pub fn scaled_sq_dist_bounds(&self, id: u32, x: &[f64], inv_h: &[f64]) -> (f64, f64) {
        let lo = self.box_lo(id);
        let hi = self.box_hi(id);
        (
            bbox::min_scaled_sq_dist(x, lo, hi, inv_h),
            bbox::max_scaled_sq_dist(x, lo, hi, inv_h),
        )
    }

    /// Contiguous row-major coordinate block of the points under node
    /// `id` (`count(id) · dim` values). The arena layout guarantees every
    /// node owns a contiguous row range, so this is a single slice — the
    /// input shape the blocked kernel fast path (`Kernel::sum_block`)
    /// consumes without per-point iterator overhead.
    #[inline]
    pub fn node_block(&self, id: u32) -> &[f64] {
        let n = &self.nodes[id as usize]; // CAST: u32 id widens to usize
        &self.points[(n.start as usize) * self.dim..(n.end as usize) * self.dim]
        // CAST: u32 offsets widen to usize
    }

    /// Dimension-major (SoA) coordinate block of the points under *leaf*
    /// node `id`: coordinate `j` of the leaf's point `i` sits at index
    /// `j · count(id) + i` of the returned slice (`count(id) · dim`
    /// values). This is the layout `Kernel::sum_block_soa` consumes
    /// with stride-1 inner loops; the row-major [`Self::node_block`]
    /// remains the oracle layout.
    ///
    /// # Panics
    /// Debug-asserts that `id` is a leaf — internal nodes have no SoA
    /// block (the traversal only scans leaves).
    #[inline]
    pub fn node_block_soa(&self, id: u32) -> &[f64] {
        let off = self.soa_off[id as usize]; // CAST: u32 id widens to usize
        debug_assert_ne!(off, usize::MAX, "SoA blocks exist only for leaves");
        &self.soa[off..off + self.count(id) * self.dim]
    }

    /// Row `i` of the tree's *reordered* point order (the order
    /// [`Self::node_points`] of the root yields). Lets batch drivers
    /// walk the training points without copying them out of the tree.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterator over the point rows stored under node `id`.
    pub fn node_points(&self, id: u32) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.node_block(id).chunks_exact(self.dim)
    }

    /// Maps each row of the tree's *reordered* point order back to a row
    /// index of `original` (the matrix the tree was built from), by
    /// pairing both sides in lexicographic row order. Duplicate rows are
    /// interchangeable, so any stable pairing among them is valid.
    ///
    /// Used by batch drivers (dual-tree classification, DBSCAN) that
    /// compute results in tree order and must scatter them back to the
    /// caller's order. Uses `total_cmp`, so NaN coordinates order
    /// deterministically instead of corrupting the permutation.
    ///
    /// # Panics
    /// Panics when `original` has a different row count than the tree.
    pub fn reorder_permutation(&self, original: &Matrix) -> Vec<usize> {
        assert_eq!(original.rows(), self.len(), "row count mismatch");
        let d = self.dim;
        let reordered: Vec<&[f64]> = self.node_points(self.root()).collect();
        let cmp = |a: &[f64], b: &[f64]| -> std::cmp::Ordering {
            for c in 0..d {
                match a[c].total_cmp(&b[c]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        };
        let mut orig_idx: Vec<usize> = (0..original.rows()).collect();
        orig_idx.sort_by(|&a, &b| cmp(original.row(a), original.row(b)));
        let mut tree_idx: Vec<usize> = (0..reordered.len()).collect();
        tree_idx.sort_by(|&a, &b| cmp(reordered[a], reordered[b]));
        let mut perm = vec![0usize; original.rows()];
        for (t, o) in tree_idx.into_iter().zip(orig_idx) {
            perm[t] = o;
        }
        perm
    }

    /// Serializes the tree into flat buffers for model persistence:
    /// `(dim, leaf_size, points, node_tuples, node_lo, node_hi)` where
    /// each node tuple is `(start, end, left, right)`.
    pub fn to_raw_parts(&self) -> KdTreeRaw {
        KdTreeRaw {
            dim: self.dim,
            leaf_size: self.leaf_size,
            points: self.points.clone(),
            nodes: self
                .nodes
                .iter()
                .map(|n| [n.start, n.end, n.left, n.right])
                .collect(),
            node_lo: self.node_lo.clone(),
            node_hi: self.node_hi.clone(),
            weights: self.weights.clone(),
        }
    }

    /// Reconstructs a tree from [`Self::to_raw_parts`] output.
    ///
    /// # Errors
    /// Fails when buffer lengths are inconsistent; node-level structural
    /// validity (ranges, child links) is checked shallowly.
    pub fn from_raw_parts(raw: KdTreeRaw) -> Result<Self> {
        let d = raw.dim;
        if d == 0 || raw.leaf_size == 0 {
            return Err(invalid_param("raw", "dim and leaf_size must be positive"));
        }
        if !raw.points.len().is_multiple_of(d) {
            return Err(invalid_param("raw", "points length not divisible by dim"));
        }
        let n = raw.points.len() / d;
        if raw.nodes.is_empty()
            || raw.node_lo.len() != raw.nodes.len() * d
            || raw.node_hi.len() != raw.nodes.len() * d
        {
            return Err(invalid_param("raw", "node buffers inconsistent"));
        }
        if !raw.weights.is_empty() {
            if raw.weights.len() != n {
                return Err(invalid_param("raw", "weights length does not match points"));
            }
            for &w in &raw.weights {
                if !w.is_finite() || w <= 0.0 {
                    return Err(invalid_param("raw", "weights must be positive and finite"));
                }
            }
        }
        let node_count = raw.nodes.len() as u32; // CAST: >= 2^32 nodes are unaddressable by u32 links anyway
        let mut nodes = Vec::with_capacity(raw.nodes.len());
        for (id, t) in raw.nodes.iter().enumerate() {
            let [start, end, left, right] = *t;
            // CAST: u32 end widens to usize
            if start > end || end as usize > n {
                return Err(invalid_param("raw", "node range out of bounds"));
            }
            // Children must point strictly forward in the arena (the
            // builder pushes children after their parent), which rules out
            // self-references and cycles that would hang traversal on a
            // corrupted model file.
            let valid_child = |c: u32| c == NO_CHILD || (c < node_count && c as usize > id); // CAST: u32 child id widens to usize
            if !valid_child(left) || !valid_child(right) {
                return Err(invalid_param(
                    "raw",
                    "child link out of bounds or non-forward",
                ));
            }
            if (left == NO_CHILD) != (right == NO_CHILD) {
                return Err(invalid_param("raw", "node must have zero or two children"));
            }
            nodes.push(Node {
                start,
                end,
                left,
                right,
            });
        }
        // Node masses are derived state: recompute from the ranges in
        // arena order so a loaded weighted tree matches a freshly built
        // one bit-for-bit.
        let masses = if raw.weights.is_empty() {
            Vec::new()
        } else {
            nodes
                .iter()
                .map(|nd| raw.weights[nd.start as usize..nd.end as usize].iter().sum()) // CAST: u32 offsets widen to usize
                .collect()
        };
        let mut tree = Self {
            dim: d,
            leaf_size: raw.leaf_size,
            points: raw.points,
            n_points: n,
            nodes,
            node_lo: raw.node_lo,
            node_hi: raw.node_hi,
            weights: raw.weights,
            masses,
            soa: Vec::new(),
            soa_off: Vec::new(),
        };
        // The SoA leaf cache is derived state, rebuilt on load like the
        // node masses.
        tree.build_soa();
        Ok(tree)
    }

    /// Visits every point within scaled distance `radius` of `x` (i.e.
    /// scaled squared distance ≤ `radius²`), pruning subtrees whose boxes
    /// lie entirely outside. Used by the radial (`rkde`) baseline.
    ///
    /// Returns the number of bounding-box distance computations performed
    /// (a proxy for traversal cost).
    pub fn for_each_in_scaled_radius(
        &self,
        x: &[f64],
        inv_h: &[f64],
        radius: f64,
        mut visit: impl FnMut(&[f64]),
    ) -> usize {
        self.for_each_in_scaled_radius_indexed(x, inv_h, radius, |_, p| visit(p))
    }

    /// Like [`Self::for_each_in_scaled_radius`], but the visitor also
    /// receives the point's row index in the tree's reordered order —
    /// what graph-building consumers (e.g. DBSCAN) need.
    pub fn for_each_in_scaled_radius_indexed(
        &self,
        x: &[f64],
        inv_h: &[f64],
        radius: f64,
        mut visit: impl FnMut(usize, &[f64]),
    ) -> usize {
        let r2 = radius * radius;
        let mut stack = vec![self.root()];
        let mut box_checks = 0usize;
        while let Some(id) = stack.pop() {
            box_checks += 1;
            let lo = self.box_lo(id);
            let hi = self.box_hi(id);
            if bbox::min_scaled_sq_dist(x, lo, hi, inv_h) > r2 {
                continue;
            }
            match self.children(id) {
                Some((l, r)) => {
                    stack.push(l);
                    stack.push(r);
                }
                None => {
                    let (start, _) = self.node_range(id);
                    for (offset, p) in self.node_points(id).enumerate() {
                        let mut acc = 0.0;
                        for i in 0..self.dim {
                            let z = (x[i] - p[i]) * inv_h[i];
                            acc += z * z;
                        }
                        if acc <= r2 {
                            visit(start + offset, p);
                        }
                    }
                }
            }
        }
        box_checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::Rng;

    fn random_matrix(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.normal(0.0, 2.0);
            }
            m.push_row(&row).unwrap();
        }
        m
    }

    /// Recursively verify structural invariants; returns total leaf points.
    fn check_invariants(tree: &KdTree, id: u32) -> usize {
        let count = tree.count(id);
        let lo = tree.box_lo(id);
        let hi = tree.box_hi(id);
        // Every point in range must lie inside the node's box.
        for p in tree.node_points(id) {
            for c in 0..tree.dim() {
                assert!(p[c] >= lo[c] && p[c] <= hi[c], "point escapes box");
            }
        }
        match tree.children(id) {
            None => {
                // Leaf point count matches range length.
                assert_eq!(tree.node_points(id).len(), count);
                count
            }
            Some((l, r)) => {
                let cl = check_invariants(tree, l);
                let cr = check_invariants(tree, r);
                assert_eq!(cl + cr, count, "child counts must sum to parent");
                assert!(cl > 0 && cr > 0, "children must be non-empty");
                // Child boxes nest inside the parent box.
                for child in [l, r] {
                    let clo = tree.box_lo(child);
                    let chi = tree.box_hi(child);
                    for c in 0..tree.dim() {
                        assert!(clo[c] >= lo[c] - 1e-12);
                        assert!(chi[c] <= hi[c] + 1e-12);
                    }
                }
                cl + cr
            }
        }
    }

    #[test]
    fn build_preserves_all_points() {
        for rule in [SplitRule::TrimmedMidpoint, SplitRule::Median] {
            let data = random_matrix(500, 3, 42);
            let tree = KdTree::build(&data, 16, rule).unwrap();
            assert_eq!(tree.len(), 500);
            let total = check_invariants(&tree, tree.root());
            assert_eq!(total, 500, "{rule:?}");
            // The multiset of points must be preserved: compare sums.
            let orig_sum: f64 = data.as_slice().iter().sum();
            let tree_sum: f64 = tree
                .node_points(tree.root())
                .flat_map(|r| r.iter().copied())
                .sum();
            assert!((orig_sum - tree_sum).abs() < 1e-9);
        }
    }

    #[test]
    fn leaves_respect_leaf_size_when_splittable() {
        let data = random_matrix(1000, 2, 7);
        let tree = KdTree::build(&data, 8, SplitRule::TrimmedMidpoint).unwrap();
        fn max_leaf(tree: &KdTree, id: u32) -> usize {
            match tree.children(id) {
                None => tree.count(id),
                Some((l, r)) => max_leaf(tree, l).max(max_leaf(tree, r)),
            }
        }
        // Continuous data: every oversized node is splittable.
        assert!(max_leaf(&tree, tree.root()) <= 8);
    }

    #[test]
    fn identical_points_make_single_leaf() {
        let data = Matrix::from_rows(&vec![vec![1.0, 2.0]; 50]).unwrap();
        let tree = KdTree::build(&data, 4, SplitRule::TrimmedMidpoint).unwrap();
        assert!(tree.is_leaf(tree.root()));
        assert_eq!(tree.count(tree.root()), 50);
    }

    #[test]
    fn duplicate_heavy_data_still_partitions() {
        // Half the mass at one point, half spread out: the quantile split
        // degenerates and the box-midpoint fallback must kick in.
        let mut rows: Vec<Vec<f64>> = vec![vec![0.0]; 100];
        for i in 0..100 {
            rows.push(vec![10.0 + i as f64 * 0.01]);
        }
        let data = Matrix::from_rows(&rows).unwrap();
        let tree = KdTree::build(&data, 4, SplitRule::TrimmedMidpoint).unwrap();
        assert_eq!(check_invariants(&tree, tree.root()), 200);
        assert!(tree.node_count() > 1);
    }

    #[test]
    fn rejects_bad_inputs() {
        let empty = Matrix::with_cols(2);
        assert!(KdTree::build(&empty, 8, SplitRule::Median).is_err());
        let data = random_matrix(10, 2, 3);
        assert!(KdTree::build(&data, 0, SplitRule::Median).is_err());
    }

    #[test]
    fn single_point_tree() {
        let data = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        let tree = KdTree::build(&data, 8, SplitRule::TrimmedMidpoint).unwrap();
        assert_eq!(tree.len(), 1);
        assert!(tree.is_leaf(tree.root()));
        assert_eq!(tree.box_lo(tree.root()), &[3.0, 4.0]);
        assert_eq!(tree.box_hi(tree.root()), &[3.0, 4.0]);
    }

    #[test]
    fn node_block_agrees_with_node_points() {
        let data = random_matrix(300, 3, 19);
        let tree = KdTree::build(&data, 16, SplitRule::TrimmedMidpoint).unwrap();
        for id in 0..tree.node_count() as u32 {
            let block = tree.node_block(id);
            assert_eq!(block.len(), tree.count(id) * tree.dim());
            let flat: Vec<f64> = tree
                .node_points(id)
                .flat_map(|r| r.iter().copied())
                .collect();
            assert_eq!(block, flat.as_slice());
        }
    }

    #[test]
    fn node_block_soa_is_the_transpose_of_node_block() {
        for d in [1usize, 2, 3, 7] {
            let data = random_matrix(300, d, 19 + d as u64);
            let tree = KdTree::build(&data, 16, SplitRule::TrimmedMidpoint).unwrap();
            for id in 0..tree.node_count() as u32 {
                if !tree.is_leaf(id) {
                    continue;
                }
                let rows = tree.count(id);
                let block = tree.node_block(id);
                let soa = tree.node_block_soa(id);
                assert_eq!(soa.len(), rows * d);
                for i in 0..rows {
                    for j in 0..d {
                        assert_eq!(
                            soa[j * rows + i].to_bits(),
                            block[i * d + j].to_bits(),
                            "id={id} i={i} j={j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn soa_cache_survives_raw_roundtrip() {
        let data = random_matrix(250, 3, 47);
        let tree = KdTree::build(&data, 8, SplitRule::TrimmedMidpoint).unwrap();
        let back = KdTree::from_raw_parts(tree.to_raw_parts()).unwrap();
        for id in 0..tree.node_count() as u32 {
            if tree.is_leaf(id) {
                assert_eq!(tree.node_block_soa(id), back.node_block_soa(id));
            }
        }
    }

    #[test]
    fn point_accessor_matches_reordered_rows() {
        let data = random_matrix(120, 2, 3);
        let tree = KdTree::build(&data, 8, SplitRule::TrimmedMidpoint).unwrap();
        for (i, row) in tree.node_points(tree.root()).enumerate() {
            assert_eq!(tree.point(i), row);
        }
    }

    #[test]
    fn dist_bounds_sandwich_point_distances() {
        let data = random_matrix(300, 2, 11);
        let tree = KdTree::build(&data, 16, SplitRule::TrimmedMidpoint).unwrap();
        let inv_h = [1.0, 1.0];
        let q = [0.5, -0.25];
        // Check every node: all contained points must respect the bounds.
        for id in 0..tree.node_count() as u32 {
            let (umin, umax) = tree.scaled_sq_dist_bounds(id, &q, &inv_h);
            for p in tree.node_points(id) {
                let dx = q[0] - p[0];
                let dy = q[1] - p[1];
                let u = dx * dx + dy * dy;
                assert!(u >= umin - 1e-12 && u <= umax + 1e-12);
            }
        }
    }

    #[test]
    fn radius_query_matches_linear_scan() {
        let data = random_matrix(400, 3, 17);
        let tree = KdTree::build(&data, 8, SplitRule::TrimmedMidpoint).unwrap();
        let inv_h = [1.0, 0.5, 2.0];
        let q = [0.1, 0.2, -0.3];
        let radius = 2.0;
        let mut found = 0usize;
        let mut sum = 0.0;
        tree.for_each_in_scaled_radius(&q, &inv_h, radius, |p| {
            found += 1;
            sum += p[0];
        });
        let mut expected = 0usize;
        let mut expected_sum = 0.0;
        for row in data.iter_rows() {
            let mut acc = 0.0;
            for i in 0..3 {
                let z = (q[i] - row[i]) * inv_h[i];
                acc += z * z;
            }
            if acc <= radius * radius {
                expected += 1;
                expected_sum += row[0];
            }
        }
        assert_eq!(found, expected);
        assert!((sum - expected_sum).abs() < 1e-9);
        assert!(expected > 0, "test should cover non-empty result");
    }

    #[test]
    fn weighted_build_keeps_weights_row_aligned() {
        let data = random_matrix(400, 3, 31);
        // Encode each row's identity into its weight so any misalignment
        // after partition swaps is detectable: w = 1 + first coordinate
        // shifted into a positive range.
        let weights: Vec<f64> = data.iter_rows().map(|r| 20.0 + r[0]).collect();
        let tree = KdTree::build_weighted(&data, &weights, 8, SplitRule::TrimmedMidpoint).unwrap();
        assert!(tree.is_weighted());
        let w = tree.node_weights(tree.root()).unwrap();
        for (row, &wi) in tree.node_points(tree.root()).zip(w) {
            assert!(
                (wi - (20.0 + row[0])).abs() < 1e-12,
                "weight detached from its row"
            );
        }
        // Masses: children sum to parent, root mass = Σ w.
        let total: f64 = weights.iter().sum();
        assert!((tree.total_mass() - total).abs() < 1e-9);
        for id in 0..tree.node_count() as u32 {
            if let Some((l, r)) = tree.children(id) {
                assert!(
                    (tree.node_mass(l) + tree.node_mass(r) - tree.node_mass(id)).abs()
                        < 1e-9 * tree.node_mass(id).max(1.0)
                );
            }
            let node_sum: f64 = tree.node_weights(id).unwrap().iter().sum();
            assert!((node_sum - tree.node_mass(id)).abs() < 1e-9);
        }
    }

    #[test]
    fn unweighted_mass_equals_count_bitwise() {
        let data = random_matrix(200, 2, 5);
        let tree = KdTree::build(&data, 8, SplitRule::TrimmedMidpoint).unwrap();
        assert!(!tree.is_weighted());
        assert!(tree.node_weights(tree.root()).is_none());
        assert!(tree.weights().is_none());
        for id in 0..tree.node_count() as u32 {
            assert_eq!(
                tree.node_mass(id).to_bits(),
                (tree.count(id) as f64).to_bits()
            );
        }
        assert_eq!(tree.total_mass().to_bits(), (200.0f64).to_bits());
    }

    #[test]
    fn weighted_raw_roundtrip_is_bit_identical() {
        let data = random_matrix(300, 2, 13);
        let weights: Vec<f64> = (0..300).map(|i| 1.0 + (i % 9) as f64 * 0.5).collect();
        let tree = KdTree::build_weighted(&data, &weights, 16, SplitRule::TrimmedMidpoint).unwrap();
        let raw = tree.to_raw_parts();
        let back = KdTree::from_raw_parts(raw).unwrap();
        for id in 0..tree.node_count() as u32 {
            assert_eq!(tree.node_mass(id).to_bits(), back.node_mass(id).to_bits());
        }
        assert_eq!(tree.node_weights(0), back.node_weights(0));
    }

    #[test]
    fn weighted_build_rejects_bad_weights() {
        let data = random_matrix(10, 2, 3);
        assert!(KdTree::build_weighted(&data, &[1.0; 9], 4, SplitRule::Median).is_err());
        let mut w = vec![1.0; 10];
        w[3] = 0.0;
        assert!(KdTree::build_weighted(&data, &w, 4, SplitRule::Median).is_err());
        w[3] = f64::NAN;
        assert!(KdTree::build_weighted(&data, &w, 4, SplitRule::Median).is_err());
        w[3] = -2.0;
        assert!(KdTree::build_weighted(&data, &w, 4, SplitRule::Median).is_err());
        w[3] = f64::INFINITY;
        assert!(KdTree::build_weighted(&data, &w, 4, SplitRule::Median).is_err());
    }

    #[test]
    fn median_split_is_more_balanced() {
        // Skewed data: median split should produce a shallower tree than
        // trimmed-midpoint on pathological skew, but both must be valid.
        let mut rng = Rng::seed_from(23);
        let mut m = Matrix::with_cols(1);
        for _ in 0..1000 {
            let v: f64 = rng.next_f64();
            m.push_row(&[v * v * v * 100.0]).unwrap();
        }
        let t1 = KdTree::build(&m, 8, SplitRule::Median).unwrap();
        let t2 = KdTree::build(&m, 8, SplitRule::TrimmedMidpoint).unwrap();
        assert_eq!(check_invariants(&t1, t1.root()), 1000);
        assert_eq!(check_invariants(&t2, t2.root()), 1000);
    }
}
