#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tkdc-index
//!
//! Spatial substrate for tKDC: a multi-resolution k-d tree whose nodes
//! track point counts and tight bounding boxes (following Gray & Moore's
//! density-bound construction and Deng & Moore's multi-resolution trees),
//! plus the bandwidth-aligned hypergrid cache of §3.7 of the paper.
//!
//! The tree is stored as a flat arena (`Vec` of nodes with `u32` child
//! links and bounding boxes in contiguous side arrays) so traversal stays
//! cache-friendly; training points are reordered into node-contiguous
//! ranges so leaf scans are sequential reads.

pub mod bbox;
pub mod grid;
pub mod kdtree;
pub mod knn;

pub use bbox::{max_scaled_sq_dist, min_scaled_sq_dist};
pub use grid::{BandwidthGrid, GridRaw, MAX_GRID_DIM};
pub use kdtree::{KdTree, KdTreeRaw, SplitRule};
pub use knn::{k_nearest, Neighbor};
