//! Bandwidth-aligned hypergrid cache (§3.7 of the paper).
//!
//! A single pass over the training set counts how many points fall into
//! each cell of a grid whose cell edge along axis `i` equals the kernel
//! bandwidth `h_i`. Any two points sharing a cell are then within scaled
//! distance `√d` of each other, so the same-cell count alone yields a
//! density lower bound `count/n · K(u = d)` — enough to classify obvious
//! inliers as HIGH without touching the k-d tree. The paper disables the
//! grid for `d > 4` because cell occupancy collapses in higher dimensions.
//!
//! Cells are keyed by packing per-axis indices (i32) into a `u128`, which
//! caps the supported dimensionality at 4 — exactly the regime where the
//! grid helps. Hashing uses a multiply-xor finalizer rather than SipHash.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::Matrix;

/// Maximum dimensionality the grid supports (and where it pays off).
pub const MAX_GRID_DIM: usize = 4;

/// Fast 64-bit finalizer hasher for pre-mixed integer keys.
#[derive(Default)]
pub struct MixHasher(u64);

impl Hasher for MixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (unused for u128 keys but required by the trait).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3); // CAST: u8 byte widens losslessly
        }
    }

    #[inline]
    fn write_u128(&mut self, x: u128) {
        // splitmix-style avalanche over both halves.
        let mut z = (x as u64) ^ ((x >> 64) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15); // CAST: splitting a u128 into 64-bit words
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

type CellMap = HashMap<u128, u32, BuildHasherDefault<MixHasher>>;

/// Flat serialized form of a [`BandwidthGrid`] for model persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRaw {
    /// Cell edge lengths.
    pub cell: Vec<f64>,
    /// `(packed cell key, count)` pairs, sorted by key for determinism.
    pub entries: Vec<(u128, u32)>,
    /// Training point count.
    pub n_points: usize,
}

/// Grid of bandwidth-sized cells with per-cell point counts.
#[derive(Debug)]
pub struct BandwidthGrid {
    /// Cell edge lengths (the kernel bandwidths).
    cell: Vec<f64>,
    counts: CellMap,
    n_points: usize,
}

impl BandwidthGrid {
    /// Builds the grid in one pass over the dataset.
    ///
    /// # Errors
    /// Fails when `d > MAX_GRID_DIM`, the dataset is empty, or any cell
    /// edge is non-positive.
    pub fn build(data: &Matrix, cell_edges: &[f64]) -> Result<Self> {
        let d = data.cols();
        if d == 0 || data.rows() == 0 {
            return Err(Error::EmptyInput("grid training data"));
        }
        if d > MAX_GRID_DIM {
            return Err(invalid_param(
                "cell_edges",
                format!("grid supports at most {MAX_GRID_DIM} dimensions, got {d}"),
            ));
        }
        if cell_edges.len() != d {
            return Err(Error::DimensionMismatch {
                expected: d,
                actual: cell_edges.len(),
            });
        }
        for &e in cell_edges {
            if !e.is_finite() || e <= 0.0 {
                return Err(invalid_param(
                    "cell_edges",
                    format!("cell edges must be positive and finite, got {e}"),
                ));
            }
        }
        let mut counts = CellMap::default();
        for row in data.iter_rows() {
            let key = Self::cell_key(row, cell_edges)?;
            *counts.entry(key).or_insert(0) += 1;
        }
        Ok(Self {
            cell: cell_edges.to_vec(),
            counts,
            n_points: data.rows(),
        })
    }

    /// Packs per-axis cell indices into a u128 key (32 bits per axis).
    fn cell_key(x: &[f64], cell: &[f64]) -> Result<u128> {
        let mut key: u128 = 0;
        for (i, (&v, &e)) in x.iter().zip(cell).enumerate() {
            let idx = (v / e).floor();
            if !(idx.is_finite() && idx.abs() < i32::MAX as f64) {
                return Err(Error::Numeric(format!(
                    "coordinate {v} overflows grid index space"
                )));
            }
            // Offset into unsigned space so negatives pack cleanly.
            let packed = (idx as i64 + (1i64 << 31)) as u64 & 0xFFFF_FFFF; // CAST: |idx| < 2^31 checked above, so the offset fits 32 bits
            key |= (packed as u128) << (32 * i); // CAST: u64 -> u128 widening
        }
        Ok(key)
    }

    /// Number of points sharing a cell with `x` (including any point at
    /// `x` itself if it was in the training data).
    pub fn cell_count(&self, x: &[f64]) -> usize {
        debug_assert_eq!(x.len(), self.cell.len());
        match Self::cell_key(x, &self.cell) {
            Ok(key) => self.counts.get(&key).copied().unwrap_or(0) as usize, // CAST: cell counts are bounded by n
            Err(_) => 0,
        }
    }

    /// The per-axis cell edge lengths the grid was built with.
    pub fn cell_edges(&self) -> &[f64] {
        &self.cell
    }

    /// Number of training points the grid was built over.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.counts.len()
    }

    /// Serializes the grid's cell map for model persistence.
    pub fn to_raw_parts(&self) -> GridRaw {
        let mut entries: Vec<(u128, u32)> = self.counts.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        GridRaw {
            cell: self.cell.clone(),
            entries,
            n_points: self.n_points,
        }
    }

    /// Reconstructs a grid from [`Self::to_raw_parts`] output.
    ///
    /// # Errors
    /// Fails on empty cell edges or zero point counts.
    pub fn from_raw_parts(raw: GridRaw) -> Result<Self> {
        if raw.cell.is_empty() || raw.cell.len() > MAX_GRID_DIM {
            return Err(invalid_param("raw", "cell edge count out of range"));
        }
        if raw.n_points == 0 {
            return Err(Error::EmptyInput("grid raw parts"));
        }
        let mut counts = CellMap::default();
        for (k, v) in raw.entries {
            counts.insert(k, v);
        }
        Ok(Self {
            cell: raw.cell,
            counts,
            n_points: raw.n_points,
        })
    }

    /// Scaled squared length of the cell diagonal. With cell edges equal
    /// to the bandwidths this is exactly `d`: two points in one cell are
    /// never farther than the diagonal, so `K(diag²)` lower-bounds their
    /// kernel, giving the density lower bound
    /// `cell_count/n · K(diag_scaled_sq)`.
    pub fn diag_scaled_sq(&self, inv_h: &[f64]) -> f64 {
        debug_assert_eq!(inv_h.len(), self.cell.len());
        self.cell
            .iter()
            .zip(inv_h)
            .map(|(&e, &ih)| {
                let z = e * ih;
                z * z
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_data() -> Matrix {
        Matrix::from_rows(&[
            vec![0.1, 0.1],
            vec![0.2, 0.3],
            vec![0.9, 0.9],
            vec![1.5, 0.5],
            vec![-0.5, -0.5],
        ])
        .unwrap()
    }

    #[test]
    fn counts_points_per_cell() {
        let grid = BandwidthGrid::build(&simple_data(), &[1.0, 1.0]).unwrap();
        // Cell (0,0) holds the first three points.
        assert_eq!(grid.cell_count(&[0.5, 0.5]), 3);
        // Cell (1,0) holds one.
        assert_eq!(grid.cell_count(&[1.5, 0.5]), 1);
        // Cell (-1,-1) holds one (negatives floor correctly).
        assert_eq!(grid.cell_count(&[-0.1, -0.9]), 1);
        // Empty cell.
        assert_eq!(grid.cell_count(&[10.0, 10.0]), 0);
        assert_eq!(grid.n_points(), 5);
        assert_eq!(grid.occupied_cells(), 3);
    }

    #[test]
    fn counts_sum_to_n() {
        let grid = BandwidthGrid::build(&simple_data(), &[0.25, 0.25]).unwrap();
        let total: u32 = grid.counts.values().sum();
        assert_eq!(total as usize, grid.n_points());
    }

    #[test]
    fn cell_edges_scale_cells() {
        let data = Matrix::from_rows(&[vec![0.0], vec![0.4], vec![0.6]]).unwrap();
        let coarse = BandwidthGrid::build(&data, &[1.0]).unwrap();
        assert_eq!(coarse.cell_count(&[0.5]), 3);
        let fine = BandwidthGrid::build(&data, &[0.5]).unwrap();
        assert_eq!(fine.cell_count(&[0.25]), 2);
        assert_eq!(fine.cell_count(&[0.75]), 1);
    }

    #[test]
    fn diag_is_dimension_when_edges_match_bandwidth() {
        let grid = BandwidthGrid::build(&simple_data(), &[0.7, 1.3]).unwrap();
        let inv_h = [1.0 / 0.7, 1.0 / 1.3];
        let diag = grid.diag_scaled_sq(&inv_h);
        assert!((diag - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_high_dimension() {
        let data = Matrix::from_rows(&[vec![0.0; 5]]).unwrap();
        assert!(BandwidthGrid::build(&data, &[1.0; 5]).is_err());
    }

    #[test]
    fn rejects_bad_edges() {
        let data = simple_data();
        assert!(BandwidthGrid::build(&data, &[1.0]).is_err()); // wrong len
        assert!(BandwidthGrid::build(&data, &[0.0, 1.0]).is_err());
        assert!(BandwidthGrid::build(&data, &[f64::NAN, 1.0]).is_err());
        let empty = Matrix::with_cols(2);
        assert!(BandwidthGrid::build(&empty, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn boundary_points_floor_consistently() {
        // A point exactly on a cell boundary belongs to the upper cell
        // (floor semantics) — queries at the same coordinate must agree.
        let data = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![0.999]]).unwrap();
        let grid = BandwidthGrid::build(&data, &[1.0]).unwrap();
        assert_eq!(grid.cell_count(&[1.0]), 2);
        assert_eq!(grid.cell_count(&[0.999]), 1);
    }

    #[test]
    fn same_cell_points_within_diagonal() {
        // Correctness of the grid bound: any two points in the same cell
        // must be within the scaled diagonal distance.
        let data = Matrix::from_rows(&[
            vec![0.05, 0.05],
            vec![0.95, 0.95],
            vec![0.5, 0.01],
            vec![0.01, 0.99],
        ])
        .unwrap();
        let edges = [1.0, 1.0];
        let grid = BandwidthGrid::build(&data, &edges).unwrap();
        let inv_h = [1.0, 1.0];
        let diag = grid.diag_scaled_sq(&inv_h);
        for a in data.iter_rows() {
            for b in data.iter_rows() {
                let same_cell = BandwidthGrid::cell_key(a, &edges).unwrap()
                    == BandwidthGrid::cell_key(b, &edges).unwrap();
                if same_cell {
                    let u: f64 = a
                        .iter()
                        .zip(b)
                        .zip(&inv_h)
                        .map(|((&x, &y), &ih)| {
                            let z = (x - y) * ih;
                            z * z
                        })
                        .sum();
                    assert!(u <= diag + 1e-12);
                }
            }
        }
    }
}
