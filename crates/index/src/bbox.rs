//! Bounding-box distance computations.
//!
//! For a query point `x` and an axis-aligned box `[lo, hi]`, the minimum
//! and maximum displacement per dimension give the distance vectors
//! `d_min` and `d_max` of Eq. 6 in the paper. All distances here are
//! computed in *bandwidth-scaled* space (each axis divided by `h_i`), so
//! the results feed `Kernel::eval_scaled_sq` directly: the kernel of the
//! minimum distance upper-bounds, and of the maximum distance
//! lower-bounds, the density contribution of every point inside the box.

/// Scaled squared distance from `x` to the *nearest* point of the box.
///
/// Zero when `x` lies inside the box.
#[inline]
pub fn min_scaled_sq_dist(x: &[f64], lo: &[f64], hi: &[f64], inv_h: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), lo.len());
    debug_assert_eq!(x.len(), hi.len());
    debug_assert_eq!(x.len(), inv_h.len());
    let mut acc = 0.0;
    for i in 0..x.len() {
        // Distance to the interval [lo_i, hi_i]: positive only outside.
        let d = if x[i] < lo[i] {
            lo[i] - x[i]
        } else if x[i] > hi[i] {
            x[i] - hi[i]
        } else {
            0.0
        };
        let z = d * inv_h[i];
        acc += z * z;
    }
    acc
}

/// Scaled squared distance from `x` to the *farthest* corner of the box.
#[inline]
pub fn max_scaled_sq_dist(x: &[f64], lo: &[f64], hi: &[f64], inv_h: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), lo.len());
    debug_assert_eq!(x.len(), hi.len());
    debug_assert_eq!(x.len(), inv_h.len());
    let mut acc = 0.0;
    for i in 0..x.len() {
        let d = (x[i] - lo[i]).abs().max((hi[i] - x[i]).abs());
        let z = d * inv_h[i];
        acc += z * z;
    }
    acc
}

/// Scaled squared distance between the *nearest* pair of points of two
/// boxes (zero when they overlap). Foundation of the dual-tree batch
/// classifier: the kernel of this distance upper-bounds the contribution
/// of any reference point in box B to any query point in box A.
#[inline]
pub fn min_scaled_sq_dist_boxes(
    a_lo: &[f64],
    a_hi: &[f64],
    b_lo: &[f64],
    b_hi: &[f64],
    inv_h: &[f64],
) -> f64 {
    debug_assert_eq!(a_lo.len(), b_lo.len());
    let mut acc = 0.0;
    for i in 0..a_lo.len() {
        // Gap between the intervals [a_lo, a_hi] and [b_lo, b_hi].
        let gap = (b_lo[i] - a_hi[i]).max(a_lo[i] - b_hi[i]).max(0.0);
        let z = gap * inv_h[i];
        acc += z * z;
    }
    acc
}

/// Scaled squared distance between the *farthest* pair of points of two
/// boxes.
#[inline]
pub fn max_scaled_sq_dist_boxes(
    a_lo: &[f64],
    a_hi: &[f64],
    b_lo: &[f64],
    b_hi: &[f64],
    inv_h: &[f64],
) -> f64 {
    debug_assert_eq!(a_lo.len(), b_lo.len());
    let mut acc = 0.0;
    for i in 0..a_lo.len() {
        let d = (b_hi[i] - a_lo[i]).max(a_hi[i] - b_lo[i]);
        let z = d * inv_h[i];
        acc += z * z;
    }
    acc
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;

    const UNIT: [f64; 2] = [1.0, 1.0];

    #[test]
    fn inside_box_min_is_zero() {
        let lo = [0.0, 0.0];
        let hi = [2.0, 2.0];
        assert_eq!(min_scaled_sq_dist(&[1.0, 1.5], &lo, &hi, &UNIT), 0.0);
        // On the boundary also zero.
        assert_eq!(min_scaled_sq_dist(&[0.0, 2.0], &lo, &hi, &UNIT), 0.0);
    }

    #[test]
    fn outside_box_min_is_componentwise() {
        let lo = [0.0, 0.0];
        let hi = [2.0, 2.0];
        // x = (3, -1): dx = 1 beyond hi, dy = 1 below lo.
        assert_eq!(min_scaled_sq_dist(&[3.0, -1.0], &lo, &hi, &UNIT), 2.0);
        // Only one axis outside.
        assert_eq!(min_scaled_sq_dist(&[1.0, 5.0], &lo, &hi, &UNIT), 9.0);
    }

    #[test]
    fn max_dist_hits_far_corner() {
        let lo = [0.0, 0.0];
        let hi = [2.0, 2.0];
        // From the origin corner the far corner is (2,2).
        assert_eq!(max_scaled_sq_dist(&[0.0, 0.0], &lo, &hi, &UNIT), 8.0);
        // From the center each axis contributes 1.
        assert_eq!(max_scaled_sq_dist(&[1.0, 1.0], &lo, &hi, &UNIT), 2.0);
        // From outside, distances add.
        assert_eq!(max_scaled_sq_dist(&[3.0, 1.0], &lo, &hi, &UNIT), 9.0 + 1.0);
    }

    #[test]
    fn min_never_exceeds_max() {
        let lo = [-1.0, 0.5, 2.0];
        let hi = [1.0, 1.5, 4.0];
        let inv_h = [1.0, 2.0, 0.5];
        for &x in &[
            [0.0, 1.0, 3.0],
            [5.0, -2.0, 0.0],
            [-3.0, 1.0, 10.0],
            [1.0, 1.5, 4.0],
        ] {
            let mn = min_scaled_sq_dist(&x, &lo, &hi, &inv_h);
            let mx = max_scaled_sq_dist(&x, &lo, &hi, &inv_h);
            assert!(mn <= mx, "min {mn} > max {mx} for {x:?}");
        }
    }

    #[test]
    fn bandwidth_scaling_applies() {
        let lo = [2.0];
        let hi = [4.0];
        let inv_h = [0.5]; // h = 2
                           // x = 0: min gap 2 → scaled 1; far corner gap 4 → scaled 2.
        assert_eq!(min_scaled_sq_dist(&[0.0], &lo, &hi, &inv_h), 1.0);
        assert_eq!(max_scaled_sq_dist(&[0.0], &lo, &hi, &inv_h), 4.0);
    }

    #[test]
    fn degenerate_box_is_a_point() {
        let lo = [1.0, 2.0];
        let hi = [1.0, 2.0];
        let q = [4.0, 6.0];
        let expected = 9.0 + 16.0;
        assert_eq!(min_scaled_sq_dist(&q, &lo, &hi, &UNIT), expected);
        assert_eq!(max_scaled_sq_dist(&q, &lo, &hi, &UNIT), expected);
    }

    #[test]
    fn box_to_box_overlapping_min_is_zero() {
        let a_lo = [0.0, 0.0];
        let a_hi = [2.0, 2.0];
        let b_lo = [1.0, 1.0];
        let b_hi = [3.0, 3.0];
        assert_eq!(
            min_scaled_sq_dist_boxes(&a_lo, &a_hi, &b_lo, &b_hi, &UNIT),
            0.0
        );
    }

    #[test]
    fn box_to_box_disjoint_gap() {
        let a_lo = [0.0, 0.0];
        let a_hi = [1.0, 1.0];
        let b_lo = [3.0, 0.0];
        let b_hi = [4.0, 1.0];
        // Gap of 2 along x only.
        assert_eq!(
            min_scaled_sq_dist_boxes(&a_lo, &a_hi, &b_lo, &b_hi, &UNIT),
            4.0
        );
        // Farthest corners: (0,0)↔(4,1): 16+1.
        assert_eq!(
            max_scaled_sq_dist_boxes(&a_lo, &a_hi, &b_lo, &b_hi, &UNIT),
            17.0
        );
    }

    #[test]
    fn box_to_box_sandwiches_point_pairs() {
        let a_lo = [-1.0, 0.0];
        let a_hi = [1.0, 2.0];
        let b_lo = [2.0, -3.0];
        let b_hi = [5.0, 1.0];
        let inv_h = [0.8, 1.4];
        let mn = min_scaled_sq_dist_boxes(&a_lo, &a_hi, &b_lo, &b_hi, &inv_h);
        let mx = max_scaled_sq_dist_boxes(&a_lo, &a_hi, &b_lo, &b_hi, &inv_h);
        for i in 0..=4 {
            for j in 0..=4 {
                let p = [
                    a_lo[0] + (a_hi[0] - a_lo[0]) * i as f64 / 4.0,
                    a_lo[1] + (a_hi[1] - a_lo[1]) * j as f64 / 4.0,
                ];
                for k in 0..=4 {
                    for l in 0..=4 {
                        let q = [
                            b_lo[0] + (b_hi[0] - b_lo[0]) * k as f64 / 4.0,
                            b_lo[1] + (b_hi[1] - b_lo[1]) * l as f64 / 4.0,
                        ];
                        let dx = (p[0] - q[0]) * inv_h[0];
                        let dy = (p[1] - q[1]) * inv_h[1];
                        let d = dx * dx + dy * dy;
                        assert!(d >= mn - 1e-12 && d <= mx + 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn box_to_box_degenerates_to_point_to_box() {
        // A zero-volume query box must match the point-to-box bounds.
        let q = [1.5, -0.5];
        let b_lo = [2.0, 0.0];
        let b_hi = [4.0, 3.0];
        let inv_h = [1.0, 2.0];
        assert_eq!(
            min_scaled_sq_dist_boxes(&q, &q, &b_lo, &b_hi, &inv_h),
            min_scaled_sq_dist(&q, &b_lo, &b_hi, &inv_h)
        );
        assert_eq!(
            max_scaled_sq_dist_boxes(&q, &q, &b_lo, &b_hi, &inv_h),
            max_scaled_sq_dist(&q, &b_lo, &b_hi, &inv_h)
        );
    }

    #[test]
    fn bounds_sandwich_every_contained_point() {
        // Randomized sanity: distances to actual points inside the box lie
        // within [min, max].
        let lo = [0.0, -1.0];
        let hi = [3.0, 1.0];
        let inv_h = [0.7, 1.3];
        let q = [5.0, 0.0];
        let mn = min_scaled_sq_dist(&q, &lo, &hi, &inv_h);
        let mx = max_scaled_sq_dist(&q, &lo, &hi, &inv_h);
        // Grid of points inside the box.
        for i in 0..=6 {
            for j in 0..=6 {
                let p = [
                    lo[0] + (hi[0] - lo[0]) * i as f64 / 6.0,
                    lo[1] + (hi[1] - lo[1]) * j as f64 / 6.0,
                ];
                let dx = (q[0] - p[0]) * inv_h[0];
                let dy = (q[1] - p[1]) * inv_h[1];
                let d = dx * dx + dy * dy;
                assert!(d >= mn - 1e-12 && d <= mx + 1e-12, "point {p:?} dist {d}");
            }
        }
    }
}
