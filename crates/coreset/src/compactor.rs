//! The reduce step of merge-reduce: compact a buffer of weighted points
//! down to at most `m` weighted points while preserving total weight.
//!
//! Buffers are flat row-major `(points, weights)` pairs — `points` holds
//! `weights.len() * dim` coordinates. Both compactors are pure functions
//! of their inputs (the sample compactor additionally of an explicit
//! seed), which is what makes the whole stream bit-reproducible.

use std::collections::BTreeMap;
use tkdc_common::Rng;

/// Which reduce algorithm the stream uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactorKind {
    /// Snap points to per-cell weighted centroids of a uniform grid over
    /// the buffer's bounding box. Deterministic (no RNG); the grid
    /// resolution is the largest `g` with `g^dim <= m`, so effectiveness
    /// degrades in high dimension (the same curse that caps the
    /// bandwidth hypergrid at 4 dims).
    Grid,
    /// Weighted random resampling down to `m` draws, each carrying
    /// weight `total/m`; duplicate draws coalesce. Dimension-agnostic.
    Sample,
}

impl CompactorKind {
    /// The compactor the CLI picks by default for a given dimension:
    /// grid matching while a meaningful grid is affordable (`dim <= 4`,
    /// mirroring the hypergrid cut-off), random sampling above.
    pub fn auto_for_dim(dim: usize) -> Self {
        if dim <= 4 {
            CompactorKind::Grid
        } else {
            CompactorKind::Sample
        }
    }
}

/// Reduces `(points, weights)` to at most `m` weighted points. Buffers
/// already within budget are returned as-is (copied). `seed` is consumed
/// only by [`CompactorKind::Sample`].
pub fn reduce(
    kind: CompactorKind,
    dim: usize,
    points: &[f64],
    weights: &[f64],
    m: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    debug_assert_eq!(points.len(), weights.len() * dim);
    if weights.len() <= m {
        return (points.to_vec(), weights.to_vec());
    }
    match kind {
        CompactorKind::Grid => grid_reduce(dim, points, weights, m),
        CompactorKind::Sample => sample_reduce(dim, points, weights, m, seed),
    }
}

/// Largest `g >= 1` with `g^dim <= m` (the per-axis grid resolution).
fn cells_per_axis(m: usize, dim: usize) -> u32 {
    debug_assert!(m >= 1 && dim >= 1);
    let guess = (m as f64).powf(1.0 / dim as f64).floor();
    // CAST: the stream clamps m to 2^22, so the root is far below u32::MAX.
    let mut g = (guess.max(1.0) as u32).max(1);
    // Float rounding can leave the guess one off in either direction.
    while pow_fits(g + 1, dim, m) {
        g += 1;
    }
    while g > 1 && !pow_fits(g, dim, m) {
        g -= 1;
    }
    g
}

/// Does `g^dim <= m` hold (overflow-checked)?
fn pow_fits(g: u32, dim: usize, m: usize) -> bool {
    let mut cells: usize = 1;
    for _ in 0..dim {
        // CAST: u32 widens losslessly into usize on every supported target.
        match cells.checked_mul(g as usize) {
            Some(c) if c <= m => cells = c,
            _ => return false,
        }
    }
    true
}

/// Grid-matching reduce: bucket points into a `g^dim` uniform grid over
/// the buffer's bounding box and emit one point per occupied cell — the
/// cell's weighted centroid, carrying the cell's total weight. The
/// `BTreeMap` fixes the output order (lexicographic cell index), keeping
/// the result independent of input permutation *within* a cell only up
/// to floating-point summation order; across calls with the same input
/// it is bit-identical.
fn grid_reduce(dim: usize, points: &[f64], weights: &[f64], m: usize) -> (Vec<f64>, Vec<f64>) {
    let n = weights.len();
    let g = cells_per_axis(m, dim);
    // Bounding box of the buffer.
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for i in 0..n {
        let p = &points[i * dim..(i + 1) * dim];
        for j in 0..dim {
            lo[j] = lo[j].min(p[j]);
            hi[j] = hi[j].max(p[j]);
        }
    }
    // Per-cell accumulators: (weight sum, weighted coordinate sums).
    let mut cells: BTreeMap<Vec<u32>, (f64, Vec<f64>)> = BTreeMap::new();
    let mut key = vec![0u32; dim];
    for i in 0..n {
        let p = &points[i * dim..(i + 1) * dim];
        for j in 0..dim {
            let span = hi[j] - lo[j];
            key[j] = if span > 0.0 {
                let t = ((p[j] - lo[j]) / span * f64::from(g)).floor();
                // CAST: t is clamped to [0, g-1] and g <= m <= 2^22.
                t.clamp(0.0, f64::from(g - 1)) as u32
            } else {
                0
            };
        }
        let e = cells
            .entry(key.clone())
            .or_insert_with(|| (0.0, vec![0.0; dim]));
        e.0 += weights[i];
        for j in 0..dim {
            e.1[j] += weights[i] * p[j];
        }
    }
    let mut out_p = Vec::with_capacity(cells.len() * dim);
    let mut out_w = Vec::with_capacity(cells.len());
    for (_cell, (w, wx)) in cells {
        for j in 0..dim {
            out_p.push(wx[j] / w);
        }
        out_w.push(w);
    }
    (out_p, out_w)
}

/// Sampling reduce: draw `m` indices with probability proportional to
/// weight (with replacement, inverse-CDF over the cumulative weight
/// array), coalesce duplicates, and give each draw weight `total/m` so
/// the output's total weight equals the input's.
fn sample_reduce(
    dim: usize,
    points: &[f64],
    weights: &[f64],
    m: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let n = weights.len();
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        cum.push(acc);
    }
    let total = acc;
    let unit = total / m as f64;
    let mut rng = Rng::seed_from(seed);
    // BTreeMap keeps the coalesced output in input order, deterministic.
    let mut counts: BTreeMap<usize, u64> = BTreeMap::new();
    for _ in 0..m {
        let u = rng.next_f64() * total;
        let idx = cum.partition_point(|&c| c <= u).min(n - 1);
        *counts.entry(idx).or_insert(0) += 1;
    }
    let mut out_p = Vec::with_capacity(counts.len() * dim);
    let mut out_w = Vec::with_capacity(counts.len());
    for (idx, c) in counts {
        out_p.extend_from_slice(&points[idx * dim..(idx + 1) * dim]);
        out_w.push(c as f64 * unit);
    }
    (out_p, out_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, dim: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = Rng::seed_from(seed);
        let points: Vec<f64> = (0..n * dim).map(|_| rng.uniform(-3.0, 3.0)).collect();
        let weights: Vec<f64> = (0..n).map(|_| 1.0 + rng.next_f64()).collect();
        (points, weights)
    }

    #[test]
    fn cells_per_axis_is_maximal() {
        assert_eq!(cells_per_axis(64, 1), 64);
        assert_eq!(cells_per_axis(64, 2), 8);
        assert_eq!(cells_per_axis(63, 2), 7); // 8^2 = 64 > 63
        assert_eq!(cells_per_axis(64, 3), 4);
        assert_eq!(cells_per_axis(64, 20), 1);
        assert_eq!(cells_per_axis(1 << 22, 2), 2048);
    }

    #[test]
    fn small_buffers_pass_through_unchanged() {
        let (p, w) = cloud(50, 2, 1);
        for kind in [CompactorKind::Grid, CompactorKind::Sample] {
            let (rp, rw) = reduce(kind, 2, &p, &w, 64, 7);
            assert_eq!(rp, p);
            assert_eq!(rw, w);
        }
    }

    #[test]
    fn both_compactors_respect_budget_and_preserve_weight() {
        let (p, w) = cloud(4000, 2, 2);
        let total: f64 = w.iter().sum();
        for kind in [CompactorKind::Grid, CompactorKind::Sample] {
            let (rp, rw) = reduce(kind, 2, &p, &w, 256, 7);
            assert!(rw.len() <= 256, "{kind:?} produced {}", rw.len());
            assert_eq!(rp.len(), rw.len() * 2);
            let out: f64 = rw.iter().sum();
            assert!(
                (out - total).abs() <= 1e-9 * total,
                "{kind:?}: {out} vs {total}"
            );
            assert!(rw.iter().all(|&x| x > 0.0 && x.is_finite()));
        }
    }

    #[test]
    fn sample_reduce_is_bit_identical_per_seed() {
        let (p, w) = cloud(2000, 3, 3);
        let a = reduce(CompactorKind::Sample, 3, &p, &w, 128, 99);
        let b = reduce(CompactorKind::Sample, 3, &p, &w, 128, 99);
        assert_eq!(a, b);
        let c = reduce(CompactorKind::Sample, 3, &p, &w, 128, 100);
        assert_ne!(a, c, "different seeds should sample differently");
    }

    #[test]
    fn grid_reduce_centroids_stay_in_bbox() {
        let (p, w) = cloud(3000, 2, 4);
        let (rp, rw) = reduce(CompactorKind::Grid, 2, &p, &w, 100, 0);
        assert!(rw.len() <= 100);
        for i in 0..rw.len() {
            for j in 0..2 {
                let c = rp[i * 2 + j];
                assert!((-3.0..=3.0).contains(&c));
            }
        }
    }

    #[test]
    fn grid_reduce_handles_degenerate_axis() {
        // All points share x = 1.5 (zero span on axis 0).
        let n = 500;
        let mut rng = Rng::seed_from(5);
        let mut p = Vec::new();
        for _ in 0..n {
            p.push(1.5);
            p.push(rng.uniform(0.0, 1.0));
        }
        let w = vec![1.0; n];
        let (rp, rw) = reduce(CompactorKind::Grid, 2, &p, &w, 64, 0);
        assert!(rw.len() <= 64);
        let total: f64 = rw.iter().sum();
        assert!((total - n as f64).abs() < 1e-9);
        for i in 0..rw.len() {
            assert!((rp[i * 2] - 1.5).abs() < 1e-12);
        }
    }
}
