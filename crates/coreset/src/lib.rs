#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tkdc-coreset
//!
//! Streaming construction of *weighted coresets* for kernel density
//! estimation: a small set of weighted points whose KDE is within an
//! additive `ε · K(0)` of the full data's KDE everywhere. Feeding such a
//! coreset to `Classifier::fit_weighted` (with the same `ε` folded into
//! the certified interval) lets tKDC train on a few thousand points in
//! place of millions while still never flipping a certified label — the
//! lost precision surfaces only as `Label::Unknown`.
//!
//! ## Construction
//!
//! The builder is the classic merge-reduce stream (Bentley–Saxe binary
//! counter): raw points accumulate in a bounded chunk; a full chunk is
//! *reduced* to at most `m` weighted points and carried into a ladder of
//! level buffers, merging and re-reducing on collision exactly like
//! binary addition. Peak memory is `O(m log(n/m))` regardless of the
//! stream length `n`.
//!
//! Two interchangeable compactors implement the reduce step (see
//! [`CompactorKind`]):
//!
//! - **Grid matching** — snap points to the weighted centroids of a
//!   uniform grid over the buffer's bounding box (the discrepancy-style
//!   construction of Phillips & Tai, "Near-Optimal Coresets of Kernel
//!   Density Estimates"). Deterministic, no RNG; best in low dimension.
//! - **Random sampling** — weighted reservoir-style resampling down to
//!   `m` points, each carrying weight `W/m`. Matches the `1/ε²` random
//!   sampling rate; dimension-agnostic.
//!
//! Both preserve total weight (up to floating-point rounding), so a
//! coreset built from `n` unit-weight points has weights summing to `n`.
//! For a fixed [`CoresetConfig::seed`] the construction is bit-identical
//! across runs: the sample compactor derives one sub-seed per reduce from
//! a monotone counter, and the grid compactor uses no randomness at all.

pub mod compactor;
pub mod stream;

pub use compactor::CompactorKind;
pub use stream::{target_size, CoresetConfig, CoresetStats, StreamingCoreset, WeightedCoreset};
