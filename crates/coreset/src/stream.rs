//! The merge-reduce streaming coreset builder.
//!
//! Points arrive one at a time (or in [`Matrix`] blocks); the builder
//! keeps a bounded raw chunk plus a binary-counter ladder of already
//! reduced level buffers, so peak memory is `O(m log(n/m))` for a stream
//! of `n` points and coreset budget `m` — never the full dataset.

use crate::compactor::{self, CompactorKind};
use tkdc_common::error::invalid_param;
use tkdc_common::{Error, Matrix, Result};

/// Hard floor / ceiling on the per-buffer coreset budget `m`.
const MIN_TARGET: usize = 64;
const MAX_TARGET: usize = 1 << 22;

/// The coreset size budget for dimension `dim` and accuracy `eps`:
/// `ceil((sqrt(d)/eps) * sqrt(max(1, ln(1/eps))))`, the Phillips–Tai
/// near-optimal rate for Gaussian-like kernels, clamped to
/// `[64, 2^22]`. (Pure random sampling would need `~1/eps^2` points —
/// two orders of magnitude more at `eps = 1e-3`.)
pub fn target_size(dim: usize, eps: f64) -> Result<usize> {
    if !eps.is_finite() || eps <= 0.0 || eps >= 1.0 {
        return Err(invalid_param(
            "eps",
            format!("coreset accuracy must be in (0, 1), got {eps}"),
        ));
    }
    let d = dim.max(1) as f64;
    let log_term = (1.0 / eps).ln().max(1.0);
    let raw = (d.sqrt() / eps) * log_term.sqrt();
    // CAST: raw is positive and finite; ceil then clamp to [64, 2^22].
    Ok((raw.ceil() as usize).clamp(MIN_TARGET, MAX_TARGET))
}

/// Configuration for a [`StreamingCoreset`].
#[derive(Debug, Clone, Copy)]
pub struct CoresetConfig {
    /// Target additive accuracy of the coreset KDE, in units of `K(0)`
    /// (the kernel's maximum). This is the `ε` that must be folded into
    /// the certified interval of any classifier fit on the output.
    pub eps: f64,
    /// Which reduce algorithm to run (see [`CompactorKind`]).
    pub kind: CompactorKind,
    /// RNG seed; the whole construction is bit-identical per seed.
    pub seed: u64,
    /// Raw-chunk capacity override. `None` uses `2 * m`, the standard
    /// merge-reduce chunk; larger values trade memory for fewer reduces.
    pub chunk_capacity: Option<usize>,
}

impl CoresetConfig {
    /// A config with the given accuracy and the defaults used by the
    /// CLI: grid compactor (callers working in > 4 dims should switch
    /// via [`CompactorKind::auto_for_dim`]), seed `0xF1D0`, standard
    /// chunking.
    pub fn new(eps: f64) -> Self {
        Self {
            eps,
            kind: CompactorKind::Grid,
            seed: 0xF1D0,
            chunk_capacity: None,
        }
    }
}

/// Counters describing one coreset construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoresetStats {
    /// Raw points ingested.
    pub points_in: u64,
    /// Weighted points in the final coreset.
    pub points_out: u64,
    /// Reduce operations performed (chunk roll-ups, carries, final).
    pub reduces: u64,
    /// Peak number of points resident in the builder at any instant —
    /// the memory high-water mark, in points.
    pub max_resident_points: u64,
}

/// The finished product: weighted points plus the `ε` they were built
/// for and the construction counters.
#[derive(Debug, Clone)]
pub struct WeightedCoreset {
    /// Coreset points, one per row.
    pub points: Matrix,
    /// Per-row positive weights; sums to the input's total weight up to
    /// floating-point rounding.
    pub weights: Vec<f64>,
    /// The accuracy the coreset was built for (from [`CoresetConfig`]).
    pub eps: f64,
    /// Construction counters.
    pub stats: CoresetStats,
}

/// One reduced buffer in the level ladder.
struct Buffer {
    points: Vec<f64>,
    weights: Vec<f64>,
}

/// Streaming merge-reduce coreset builder. See the crate docs for the
/// algorithm; typical use:
///
/// ```
/// use tkdc_coreset::{CoresetConfig, StreamingCoreset};
/// let mut sc = StreamingCoreset::new(2, CoresetConfig::new(0.05)).unwrap();
/// for i in 0..10_000 {
///     let t = i as f64 * 0.001;
///     sc.push(&[t.sin(), t.cos()]).unwrap();
/// }
/// let coreset = sc.finish().unwrap();
/// assert!(coreset.points.rows() <= sc_budget(2, 0.05));
/// # fn sc_budget(d: usize, e: f64) -> usize { tkdc_coreset::target_size(d, e).unwrap() }
/// ```
pub struct StreamingCoreset {
    dim: usize,
    cfg: CoresetConfig,
    m: usize,
    chunk_cap: usize,
    chunk_points: Vec<f64>,
    chunk_weights: Vec<f64>,
    levels: Vec<Option<Buffer>>,
    stats: CoresetStats,
}

/// Derives the sub-seed for reduce number `counter` from the config
/// seed. splitmix64's finalizer decorrelates consecutive counters.
fn derive_seed(seed: u64, counter: u64) -> u64 {
    let mut z = seed ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StreamingCoreset {
    /// Creates a builder for `dim`-dimensional points.
    pub fn new(dim: usize, cfg: CoresetConfig) -> Result<Self> {
        if dim == 0 {
            return Err(invalid_param("dim", "dimension must be positive"));
        }
        let m = target_size(dim, cfg.eps)?;
        let chunk_cap = match cfg.chunk_capacity {
            Some(c) if c < 2 => {
                return Err(invalid_param(
                    "chunk_capacity",
                    format!("chunk capacity must be at least 2, got {c}"),
                ));
            }
            Some(c) => c,
            None => 2 * m,
        };
        Ok(Self {
            dim,
            cfg,
            m,
            chunk_cap,
            chunk_points: Vec::new(),
            chunk_weights: Vec::new(),
            levels: Vec::new(),
            stats: CoresetStats::default(),
        })
    }

    /// The coreset size budget `m` this builder reduces to.
    pub fn target_size(&self) -> usize {
        self.m
    }

    /// The point dimensionality this builder expects.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Counters so far (final values come from [`WeightedCoreset::stats`]).
    pub fn stats(&self) -> CoresetStats {
        self.stats
    }

    /// Ingests one unit-weight point.
    pub fn push(&mut self, point: &[f64]) -> Result<()> {
        self.push_weighted(point, 1.0)
    }

    /// Ingests one weighted point (`weight` must be positive and
    /// finite), e.g. when merging already-compacted streams.
    pub fn push_weighted(&mut self, point: &[f64], weight: f64) -> Result<()> {
        if point.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: point.len(),
            });
        }
        if !weight.is_finite() || weight <= 0.0 {
            return Err(invalid_param(
                "weight",
                format!("point weight must be positive and finite, got {weight}"),
            ));
        }
        if point.iter().any(|v| !v.is_finite()) {
            return Err(Error::Numeric(
                "non-finite coordinate in coreset stream".to_owned(),
            ));
        }
        self.chunk_points.extend_from_slice(point);
        self.chunk_weights.push(weight);
        self.stats.points_in += 1;
        self.note_resident();
        if self.chunk_weights.len() >= self.chunk_cap {
            self.roll_up_chunk();
        }
        Ok(())
    }

    /// Ingests every row of `data` with unit weight.
    pub fn push_matrix(&mut self, data: &Matrix) -> Result<()> {
        for row in data.iter_rows() {
            self.push(row)?;
        }
        Ok(())
    }

    /// Finalizes the stream: reduces the pending chunk, merges the level
    /// ladder, and reduces the union to at most `m` weighted points.
    pub fn finish(mut self) -> Result<WeightedCoreset> {
        if self.stats.points_in == 0 {
            return Err(Error::EmptyInput("coreset stream"));
        }
        let mut points = std::mem::take(&mut self.chunk_points);
        let mut weights = std::mem::take(&mut self.chunk_weights);
        if weights.len() > self.m {
            (points, weights) = self.reduce(&points, &weights);
        }
        for buf in std::mem::take(&mut self.levels).into_iter().flatten() {
            points.extend_from_slice(&buf.points);
            weights.extend_from_slice(&buf.weights);
        }
        self.note_resident_of(weights.len());
        if weights.len() > self.m {
            (points, weights) = self.reduce(&points, &weights);
        }
        self.stats.points_out = weights.len() as u64; // CAST: usize count widens to u64
        let n = weights.len();
        let points = Matrix::from_vec(points, n, self.dim)?;
        Ok(WeightedCoreset {
            points,
            weights,
            eps: self.cfg.eps,
            stats: self.stats,
        })
    }

    /// Reduces one buffer through the configured compactor, advancing
    /// the reduce counter (which keys the per-reduce RNG sub-seed).
    fn reduce(&mut self, points: &[f64], weights: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let seed = derive_seed(self.cfg.seed, self.stats.reduces);
        self.stats.reduces += 1;
        compactor::reduce(self.cfg.kind, self.dim, points, weights, self.m, seed)
    }

    /// Reduces the full raw chunk and carries it into the level ladder
    /// (binary-counter addition: merge + re-reduce on collision).
    fn roll_up_chunk(&mut self) {
        let points = std::mem::take(&mut self.chunk_points);
        let weights = std::mem::take(&mut self.chunk_weights);
        let (p, w) = self.reduce(&points, &weights);
        let mut carry = Buffer {
            points: p,
            weights: w,
        };
        let mut level = 0;
        loop {
            if level == self.levels.len() {
                self.levels.push(None);
            }
            match self.levels[level].take() {
                None => {
                    self.levels[level] = Some(carry);
                    break;
                }
                Some(mut other) => {
                    other.points.extend_from_slice(&carry.points);
                    other.weights.extend_from_slice(&carry.weights);
                    self.note_resident_of(other.weights.len());
                    let (p, w) = self.reduce(&other.points, &other.weights);
                    carry = Buffer {
                        points: p,
                        weights: w,
                    };
                    level += 1;
                }
            }
        }
        self.note_resident();
    }

    /// Updates the resident-points high-water mark from current state.
    fn note_resident(&mut self) {
        let resident = self.chunk_weights.len()
            + self
                .levels
                .iter()
                .flatten()
                .map(|b| b.weights.len())
                .sum::<usize>();
        self.note_resident_of(resident);
    }

    /// Folds an instantaneous resident count into the high-water mark.
    fn note_resident_of(&mut self, extra: usize) {
        // CAST: usize count widens to u64
        self.stats.max_resident_points = self.stats.max_resident_points.max(extra as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::Rng;

    fn gauss_stream(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.standard_normal()).collect())
            .collect()
    }

    fn build(kind: CompactorKind, pts: &[Vec<f64>], eps: f64, seed: u64) -> WeightedCoreset {
        let cfg = CoresetConfig {
            eps,
            kind,
            seed,
            chunk_capacity: None,
        };
        let mut sc = StreamingCoreset::new(pts[0].len(), cfg).unwrap();
        for p in pts {
            sc.push(p).unwrap();
        }
        sc.finish().unwrap()
    }

    #[test]
    fn target_size_tracks_rate_and_clamps() {
        // Tighter eps or higher dim => more points.
        let loose = target_size(2, 0.1).unwrap();
        let tight = target_size(2, 0.001).unwrap();
        assert!(tight > loose);
        assert!(target_size(8, 0.01).unwrap() > target_size(2, 0.01).unwrap());
        // Clamps.
        assert_eq!(target_size(1, 0.9).unwrap(), MIN_TARGET);
        assert_eq!(target_size(64, 1e-9).unwrap(), MAX_TARGET);
        // Domain errors.
        assert!(target_size(2, 0.0).is_err());
        assert!(target_size(2, 1.0).is_err());
        assert!(target_size(2, f64::NAN).is_err());
    }

    #[test]
    fn construction_is_bit_identical_per_seed() {
        let pts = gauss_stream(20_000, 2, 11);
        for kind in [CompactorKind::Grid, CompactorKind::Sample] {
            let a = build(kind, &pts, 0.02, 7);
            let b = build(kind, &pts, 0.02, 7);
            assert_eq!(a.points.as_slice(), b.points.as_slice(), "{kind:?}");
            assert_eq!(a.weights, b.weights, "{kind:?}");
            assert_eq!(a.stats, b.stats, "{kind:?}");
        }
        // A different seed changes the sample compactor's output.
        let a = build(CompactorKind::Sample, &pts, 0.02, 7);
        let c = build(CompactorKind::Sample, &pts, 0.02, 8);
        assert_ne!(a.points.as_slice(), c.points.as_slice());
    }

    #[test]
    fn weights_sum_to_input_count() {
        let pts = gauss_stream(30_000, 3, 13);
        for kind in [CompactorKind::Grid, CompactorKind::Sample] {
            let cs = build(kind, &pts, 0.05, 42);
            let total: f64 = cs.weights.iter().sum();
            assert!(
                (total - 30_000.0).abs() < 1e-6 * 30_000.0,
                "{kind:?}: total weight {total}"
            );
            assert_eq!(cs.stats.points_in, 30_000);
            assert_eq!(cs.stats.points_out, cs.weights.len() as u64);
        }
    }

    #[test]
    fn output_respects_budget_and_memory_stays_sublinear() {
        let n = 50_000usize;
        let pts = gauss_stream(n, 2, 17);
        let cs = build(CompactorKind::Grid, &pts, 0.05, 1);
        let m = target_size(2, 0.05).unwrap();
        assert!(cs.points.rows() <= m);
        // The builder never held more than a few buffers of m points.
        let resident = cs.stats.max_resident_points;
        assert!(
            resident < (n / 4) as u64,
            "resident {resident} vs n {n}: merge-reduce should be sublinear"
        );
        assert!(cs.stats.reduces > 0);
    }

    #[test]
    fn small_streams_pass_through_losslessly() {
        // Fewer points than the budget: the coreset is the input.
        let pts = gauss_stream(50, 2, 19);
        let cs = build(CompactorKind::Grid, &pts, 0.1, 1);
        assert_eq!(cs.points.rows(), 50);
        assert!(cs.weights.iter().all(|&w| (w - 1.0).abs() < 1e-15));
    }

    #[test]
    fn push_rejects_bad_input() {
        let mut sc = StreamingCoreset::new(2, CoresetConfig::new(0.1)).unwrap();
        assert!(sc.push(&[1.0]).is_err());
        assert!(sc.push(&[1.0, f64::NAN]).is_err());
        assert!(sc.push_weighted(&[1.0, 2.0], 0.0).is_err());
        assert!(sc.push_weighted(&[1.0, 2.0], f64::INFINITY).is_err());
        assert!(StreamingCoreset::new(0, CoresetConfig::new(0.1)).is_err());
        let sc = StreamingCoreset::new(2, CoresetConfig::new(0.1)).unwrap();
        assert!(matches!(sc.finish(), Err(Error::EmptyInput(_))));
    }

    #[test]
    fn push_matrix_matches_pointwise_push() {
        let pts = gauss_stream(5000, 2, 23);
        let mut m = Matrix::with_cols(2);
        for p in &pts {
            m.push_row(p).unwrap();
        }
        let cfg = CoresetConfig::new(0.05);
        let mut a = StreamingCoreset::new(2, cfg).unwrap();
        a.push_matrix(&m).unwrap();
        let a = a.finish().unwrap();
        let b = build(CompactorKind::Grid, &pts, 0.05, cfg.seed);
        assert_eq!(a.points.as_slice(), b.points.as_slice());
        assert_eq!(a.weights, b.weights);
    }
}
