//! Shared interface and evaluation recipe for the baseline estimators.

use tkdc_common::error::Result;
use tkdc_common::order::quantile_in_place;
use tkdc_common::Matrix;
use tkdc_kernel::Kernel;

/// A fitted density estimator that can score arbitrary query points.
///
/// Implementations track the number of point-kernel evaluations they
/// perform (via interior mutability) so the benchmark harness can compare
/// work done, not just wall-clock time.
pub trait DensityEstimator {
    /// Estimated probability density at `x`.
    fn density(&self, x: &[f64]) -> Result<f64>;

    /// The kernel (bandwidths included) this estimator uses.
    fn kernel(&self) -> &Kernel;

    /// Number of training points.
    fn n_train(&self) -> usize;

    /// Total point-kernel evaluations performed so far.
    fn kernel_evals(&self) -> u64;

    /// Resets the evaluation counter.
    fn reset_kernel_evals(&self);

    /// The self-contribution `f₀ = K(0)/n` subtracted when evaluating
    /// training points against their own estimator (Eq. 1).
    fn self_contribution(&self) -> f64 {
        self.kernel().max_value() / self.n_train() as f64
    }

    /// The paper's evaluation recipe for baselines: estimate the density
    /// of every training point (self-corrected) and return the
    /// `p`-quantile as the classification threshold `t(p)`.
    fn estimate_threshold(&self, data: &Matrix, p: f64) -> Result<f64> {
        let f0 = self.self_contribution();
        let mut densities = Vec::with_capacity(data.rows());
        for row in data.iter_rows() {
            densities.push((self.density(row)? - f0).max(0.0));
        }
        quantile_in_place(&mut densities, p)
    }

    /// Classifies each query as HIGH (`true`) when its density exceeds
    /// the threshold.
    fn classify_batch(&self, queries: &Matrix, threshold: f64) -> Result<Vec<bool>> {
        let mut out = Vec::with_capacity(queries.rows());
        for row in queries.iter_rows() {
            out.push(self.density(row)? > threshold);
        }
        Ok(out)
    }
}
