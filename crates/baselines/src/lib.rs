#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tkdc-baselines
//!
//! Every comparison algorithm from Table 2 of the tKDC paper:
//!
//! | name | module | description |
//! |------|--------|-------------|
//! | `simple` | [`simple`] | naïve KDE — iterates through every point |
//! | `nocut`  | [`nocut`]  | k-d tree KDE with only the tolerance rule (the Gray & Moore / scikit-learn approximation) |
//! | `rkde`   | [`rkde`]   | radial KDE — sums kernels of points within a cutoff radius found by a k-d tree range query |
//! | `binned` | [`binned`] | the `ks`-package-style binning approximation (linear binning + truncated kernel convolution, `d ≤ 4`, no accuracy guarantee) |
//!
//! All baselines implement [`DensityEstimator`], which also provides the
//! shared threshold-estimation and batch-classification recipe the paper
//! uses when comparing classification quality (estimate densities for the
//! whole dataset, take the `p`-quantile as the threshold, then classify).

pub mod binned;
pub mod estimator;
pub mod nocut;
pub mod rkde;
pub mod simple;

pub use binned::{BinnedKde, ConvolutionMethod};
pub use estimator::DensityEstimator;
pub use nocut::NocutKde;
pub use rkde::RadialKde;
pub use simple::NaiveKde;
