//! The "rkde" baseline: radial KDE. For each query, a k-d tree range
//! query finds all points within a cutoff radius (measured in
//! bandwidth-scaled space), and only those kernels are summed. The radius
//! defaults to the smallest value guaranteeing a truncation error of
//! `ε·t` given the points excluded (every excluded point contributes at
//! most `K(r²)/n`, so the total truncation error is at most `K(r²)`).
//! Smaller radii run faster but lose accuracy — the trade-off swept in
//! Fig. 13 of the paper.

use crate::estimator::DensityEstimator;
use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::Matrix;
use tkdc_index::{KdTree, SplitRule};
use tkdc_kernel::{scotts_rule, Kernel, KernelKind};
use tkdc_sync::atomic::{AtomicU64, Ordering};

/// Radius-limited kernel density estimator.
#[derive(Debug)]
pub struct RadialKde {
    tree: KdTree,
    kernel: Kernel,
    /// Cutoff radius in bandwidth-scaled space.
    radius: f64,
    evals: AtomicU64,
}

impl RadialKde {
    /// Fits with an explicit scaled cutoff radius (in multiples of the
    /// bandwidth, as in the paper's Fig. 13 sweep).
    pub fn fit_with_radius(data: &Matrix, kind: KernelKind, b: f64, radius: f64) -> Result<Self> {
        if data.rows() == 0 {
            return Err(Error::EmptyInput("rkde training data"));
        }
        if !radius.is_finite() || radius <= 0.0 {
            return Err(invalid_param(
                "radius",
                format!("must be positive and finite, got {radius}"),
            ));
        }
        let h = scotts_rule(data, b)?;
        Ok(Self {
            tree: KdTree::build(data, 32, SplitRule::Median)?,
            kernel: Kernel::new(kind, h)?,
            radius,
            evals: AtomicU64::new(0),
        })
    }

    /// Fits with the conservative default radius of the paper: the
    /// smallest radius guaranteeing truncation error at most
    /// `err_frac · t_ref` where `t_ref` is a reference density magnitude
    /// (e.g. an estimated threshold). The per-query truncation error is
    /// bounded by `K(r²)`, so we solve `K(r²) = err_frac · t_ref`.
    pub fn fit_with_error_bound(
        data: &Matrix,
        kind: KernelKind,
        b: f64,
        err_frac: f64,
        t_ref: f64,
    ) -> Result<Self> {
        if !err_frac.is_finite() || err_frac <= 0.0 || !t_ref.is_finite() || t_ref <= 0.0 {
            return Err(invalid_param(
                "err_frac/t_ref",
                "error fraction and reference density must be positive",
            ));
        }
        // Temporary kernel to translate the error target into a radius.
        let h = scotts_rule(data, b)?;
        let kernel = Kernel::new(kind, h)?;
        let target = (err_frac * t_ref / kernel.max_value()).min(0.999_999);
        let radius = if target <= 0.0 {
            return Err(invalid_param("t_ref", "error target underflows"));
        } else {
            kernel.radius_for_value_fraction(target)
        };
        Self::fit_with_radius(data, kind, b, radius)
    }

    /// The scaled cutoff radius in use.
    pub fn radius(&self) -> f64 {
        self.radius
    }
}

impl DensityEstimator for RadialKde {
    fn density(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.tree.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.tree.dim(),
                actual: x.len(),
            });
        }
        let mut acc = 0.0;
        let mut visited = 0u64;
        self.tree
            .for_each_in_scaled_radius(x, self.kernel.inv_bandwidths(), self.radius, |p| {
                acc += self.kernel.eval_pair(x, p);
                visited += 1;
            });
        // ORDERING: Relaxed — eval counters are diagnostics folded
        // after thread join; the RMW is atomic under any ordering.
        self.evals.fetch_add(visited, Ordering::Relaxed);
        Ok(acc / self.tree.len() as f64)
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    fn n_train(&self) -> usize {
        self.tree.len()
    }

    fn kernel_evals(&self) -> u64 {
        // ORDERING: Relaxed — read after the batch joins (or
        // single-threaded); staleness mid-batch is acceptable.
        self.evals.load(Ordering::Relaxed)
    }

    fn reset_kernel_evals(&self) {
        // ORDERING: Relaxed — reset between benchmark phases, never
        // concurrent with counting.
        self.evals.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;
    use crate::simple::NaiveKde;
    use tkdc_common::Rng;

    fn blob(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(2);
        for _ in 0..n {
            m.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
                .unwrap();
        }
        m
    }

    #[test]
    fn underestimates_but_tracks_naive() {
        let data = blob(1000, 29);
        let rkde = RadialKde::fit_with_radius(&data, KernelKind::Gaussian, 1.0, 5.0).unwrap();
        let naive = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        let mut rng = Rng::seed_from(31);
        for _ in 0..30 {
            let q = [rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)];
            let a = rkde.density(&q).unwrap();
            let b = naive.density(&q).unwrap();
            assert!(
                a <= b * (1.0 + 1e-12),
                "radial {a} must not exceed naive {b}"
            );
            // At 5 bandwidths the truncated tail is ≤ K(25) ≈ e^{-12.5}·K(0).
            let max_err = rkde.kernel().max_value() * (-12.5f64).exp();
            assert!(b - a <= max_err * 1.01, "error {} vs cap {max_err}", b - a);
        }
    }

    #[test]
    fn smaller_radius_fewer_evals() {
        let data = blob(3000, 37);
        let small = RadialKde::fit_with_radius(&data, KernelKind::Gaussian, 1.0, 1.0).unwrap();
        let large = RadialKde::fit_with_radius(&data, KernelKind::Gaussian, 1.0, 6.0).unwrap();
        small.density(&[0.0, 0.0]).unwrap();
        large.density(&[0.0, 0.0]).unwrap();
        assert!(
            small.kernel_evals() < large.kernel_evals(),
            "{} !< {}",
            small.kernel_evals(),
            large.kernel_evals()
        );
    }

    #[test]
    fn error_bound_constructor_sets_radius() {
        let data = blob(500, 41);
        let naive = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        let t = naive.estimate_threshold(&data, 0.01).unwrap();
        let rkde =
            RadialKde::fit_with_error_bound(&data, KernelKind::Gaussian, 1.0, 0.01, t).unwrap();
        // Truncation error at the chosen radius is at most ε·t.
        let k = rkde.kernel();
        let tail = k.eval_scaled_sq(rkde.radius() * rkde.radius());
        assert!(tail <= 0.01 * t * 1.0001, "tail {tail} vs εt {}", 0.01 * t);
        // And the radius is not absurdly conservative (within 10 bandwidths).
        assert!(rkde.radius() < 10.0);
    }

    #[test]
    fn far_query_sees_nothing() {
        let data = blob(200, 43);
        let rkde = RadialKde::fit_with_radius(&data, KernelKind::Gaussian, 1.0, 2.0).unwrap();
        assert_eq!(rkde.density(&[100.0, 100.0]).unwrap(), 0.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let data = blob(50, 47);
        assert!(RadialKde::fit_with_radius(&data, KernelKind::Gaussian, 1.0, 0.0).is_err());
        assert!(RadialKde::fit_with_radius(&data, KernelKind::Gaussian, 1.0, f64::NAN).is_err());
        let empty = Matrix::with_cols(2);
        assert!(RadialKde::fit_with_radius(&empty, KernelKind::Gaussian, 1.0, 1.0).is_err());
        let rkde = RadialKde::fit_with_radius(&data, KernelKind::Gaussian, 1.0, 1.0).unwrap();
        assert!(rkde.density(&[1.0]).is_err());
    }
}
