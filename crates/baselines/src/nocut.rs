//! The "nocut" baseline: tKDC with the threshold rule and grid disabled,
//! but the tolerance rule enabled — i.e. the Gray & Moore tree-based KDE
//! approximation, functionally equivalent to scikit-learn's k-d tree KDE
//! with relative tolerance. Produces densities accurate to a relative ε.

use crate::estimator::DensityEstimator;
use std::cell::RefCell;
use tkdc::bound::DensityBounder;
use tkdc::{Optimizations, QueryScratch};
use tkdc_common::error::{Error, Result};
use tkdc_index::{KdTree, SplitRule};
use tkdc_kernel::{scotts_rule, Kernel, KernelKind};
use tkdc_sync::atomic::{AtomicU64, Ordering};

/// Tolerance-only tree KDE (relative error `ε`).
#[derive(Debug)]
pub struct NocutKde {
    tree: KdTree,
    kernel: Kernel,
    epsilon: f64,
    evals: AtomicU64,
    scratch: RefCell<QueryScratch>,
}

impl NocutKde {
    /// Fits the estimator. `epsilon` is the relative density tolerance
    /// (scikit-learn uses `rtol`; the paper runs `nocut` with ε = 0.01).
    pub fn fit(data: &tkdc_common::Matrix, kind: KernelKind, b: f64, epsilon: f64) -> Result<Self> {
        if data.rows() == 0 {
            return Err(Error::EmptyInput("nocut training data"));
        }
        let h = scotts_rule(data, b)?;
        // scikit-learn builds balanced (median-split) trees.
        let tree = KdTree::build(data, 32, SplitRule::Median)?;
        Ok(Self {
            tree,
            kernel: Kernel::new(kind, h)?,
            epsilon,
            evals: AtomicU64::new(0),
            scratch: RefCell::new(QueryScratch::new()),
        })
    }

    fn opts() -> Optimizations {
        Optimizations {
            threshold_rule: false,
            tolerance_rule: true,
            equiwidth_split: false,
            grid: false,
        }
    }
}

impl DensityEstimator for NocutKde {
    fn density(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.tree.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.tree.dim(),
                actual: x.len(),
            });
        }
        let bounder = DensityBounder::new(&self.tree, &self.kernel, Self::opts(), self.epsilon);
        let mut scratch = self.scratch.borrow_mut();
        let before = scratch.stats.kernel_evals;
        // scikit-learn's rtol semantics: refine until the bound width is
        // within ε of the density itself.
        let b = bounder.bound_density_relative(x, self.epsilon, &mut scratch);
        self.evals
            // ORDERING: Relaxed — eval counters are diagnostics folded
            // after thread join; the RMW is atomic under any ordering.
            .fetch_add(scratch.stats.kernel_evals - before, Ordering::Relaxed);
        Ok(b.midpoint())
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    fn n_train(&self) -> usize {
        self.tree.len()
    }

    fn kernel_evals(&self) -> u64 {
        // ORDERING: Relaxed — read after the batch joins (or
        // single-threaded); staleness mid-batch is acceptable.
        self.evals.load(Ordering::Relaxed)
    }

    fn reset_kernel_evals(&self) {
        // ORDERING: Relaxed — reset between benchmark phases, never
        // concurrent with counting.
        self.evals.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::NaiveKde;
    use tkdc_common::{Matrix, Rng};

    fn blob(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(2);
        for _ in 0..n {
            m.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
                .unwrap();
        }
        m
    }

    #[test]
    fn density_within_relative_tolerance_of_naive() {
        let data = blob(1500, 13);
        let eps = 0.01;
        let nocut = NocutKde::fit(&data, KernelKind::Gaussian, 1.0, eps).unwrap();
        let naive = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        let mut rng = Rng::seed_from(17);
        for _ in 0..50 {
            let q = [rng.normal(0.0, 1.5), rng.normal(0.0, 1.5)];
            let a = nocut.density(&q).unwrap();
            let b = naive.density(&q).unwrap();
            assert!(
                (a - b).abs() <= eps * b + 1e-12,
                "nocut {a} vs naive {b} at {q:?}"
            );
        }
    }

    #[test]
    fn fewer_kernel_evals_than_naive() {
        let data = blob(4000, 19);
        let nocut = NocutKde::fit(&data, KernelKind::Gaussian, 1.0, 0.01).unwrap();
        // Dense-center query: tree bounds converge early.
        nocut.density(&[0.0, 0.0]).unwrap();
        assert!(
            nocut.kernel_evals() < 4000,
            "evals {} should beat naive's 4000",
            nocut.kernel_evals()
        );
    }

    #[test]
    fn threshold_recipe_consistent_with_naive() {
        let data = blob(600, 23);
        let nocut = NocutKde::fit(&data, KernelKind::Gaussian, 1.0, 0.01).unwrap();
        let naive = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        let tn = nocut.estimate_threshold(&data, 0.05).unwrap();
        let te = naive.estimate_threshold(&data, 0.05).unwrap();
        assert!(
            (tn - te).abs() <= 0.03 * te,
            "thresholds diverge: {tn} vs {te}"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let empty = Matrix::with_cols(2);
        assert!(NocutKde::fit(&empty, KernelKind::Gaussian, 1.0, 0.01).is_err());
        let data = blob(10, 1);
        let kde = NocutKde::fit(&data, KernelKind::Gaussian, 1.0, 0.01).unwrap();
        assert!(kde.density(&[0.0, 0.0, 0.0]).is_err());
    }
}
