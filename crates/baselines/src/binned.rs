//! The "binned" baseline, emulating the R `ks` package: linear binning
//! onto a regular grid, kernel smoothing of the bin weights (truncated
//! convolution), and multilinear interpolation at query time.
//!
//! This family is extremely fast in one or two dimensions but its grid
//! grows exponentially with dimension, so — like `ks` — it is limited to
//! `d ≤ 4`, the per-axis resolution falls with `d`, and it offers **no**
//! accuracy guarantee (its Fig. 8 F1 degrades sharply at d = 4).

use crate::estimator::DensityEstimator;
use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::Matrix;
use tkdc_kernel::{scotts_rule, Kernel, KernelKind};
use tkdc_sync::atomic::{AtomicU64, Ordering};

/// Maximum dimensionality supported by the binned estimator (as in `ks`).
pub const MAX_BINNED_DIM: usize = 4;

/// Default per-axis grid sizes used by the `ks` package per dimension
/// (index = d − 1).
pub const DEFAULT_GRID_SIZES: [usize; 4] = [401, 151, 51, 21];

/// How the bin weights are smoothed by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvolutionMethod {
    /// Direct truncated stencil — cheap for small grids / high d.
    Direct,
    /// FFT convolution (Silverman 1982), as the `ks` package uses —
    /// asymptotically faster for fine grids in low dimensions.
    Fft,
}

/// Binned kernel density estimator.
#[derive(Debug)]
pub struct BinnedKde {
    kernel: Kernel,
    n_train: usize,
    dim: usize,
    /// Per-axis grid origins (grid node 0 coordinate).
    origin: Vec<f64>,
    /// Per-axis grid spacing.
    step: Vec<f64>,
    /// Per-axis node counts.
    shape: Vec<usize>,
    /// Row-major strides for `shape` (pure function of the shape,
    /// precomputed so queries allocate nothing).
    strides: Vec<usize>,
    /// Smoothed density values at grid nodes, row-major over `shape`.
    values: Vec<f64>,
    evals: AtomicU64,
}

impl BinnedKde {
    /// Fits with the `ks`-style default grid resolution for the data's
    /// dimensionality.
    pub fn fit(data: &Matrix, kind: KernelKind, b: f64) -> Result<Self> {
        let d = data.cols();
        if d == 0 || d > MAX_BINNED_DIM {
            return Err(invalid_param(
                "data",
                format!("binned KDE supports 1..={MAX_BINNED_DIM} dims, got {d}"),
            ));
        }
        Self::fit_with_grid(data, kind, b, DEFAULT_GRID_SIZES[d - 1])
    }

    /// Fits with an explicit per-axis node count (direct convolution).
    pub fn fit_with_grid(
        data: &Matrix,
        kind: KernelKind,
        b: f64,
        nodes_per_axis: usize,
    ) -> Result<Self> {
        Self::fit_with_method(data, kind, b, nodes_per_axis, ConvolutionMethod::Direct)
    }

    /// Fits with an explicit per-axis node count and smoothing method.
    pub fn fit_with_method(
        data: &Matrix,
        kind: KernelKind,
        b: f64,
        nodes_per_axis: usize,
        method: ConvolutionMethod,
    ) -> Result<Self> {
        let d = data.cols();
        let n = data.rows();
        if n == 0 {
            return Err(Error::EmptyInput("binned KDE training data"));
        }
        if d == 0 || d > MAX_BINNED_DIM {
            return Err(invalid_param(
                "data",
                format!("binned KDE supports 1..={MAX_BINNED_DIM} dims, got {d}"),
            ));
        }
        if nodes_per_axis < 2 {
            return Err(invalid_param("nodes_per_axis", "need at least 2 nodes"));
        }
        let h = scotts_rule(data, b)?;
        let kernel = Kernel::new(kind, h)?;

        // Grid covers the data range padded by 4 bandwidths (the kernel
        // truncation horizon), like ks's default bgridsize padding.
        let (mins, maxs) = data.column_bounds();
        let mut origin = Vec::with_capacity(d);
        let mut step = Vec::with_capacity(d);
        let shape = vec![nodes_per_axis; d];
        for i in 0..d {
            let pad = 4.0 * kernel.bandwidths()[i];
            let lo = mins[i] - pad;
            let hi = maxs[i] + pad;
            origin.push(lo);
            step.push((hi - lo) / (nodes_per_axis - 1) as f64);
        }

        // Linear binning: each point spreads weight over the 2^d nodes of
        // its enclosing cell, proportional to opposite-corner volumes.
        let total_nodes: usize = shape.iter().product();
        let mut weights = vec![0.0f64; total_nodes];
        let strides = Self::strides(&shape);
        let mut idx = vec![0usize; d];
        let mut frac = vec![0.0f64; d];
        for row in data.iter_rows() {
            for i in 0..d {
                let t = (row[i] - origin[i]) / step[i];
                let base = t.floor().clamp(0.0, (shape[i] - 2) as f64);
                idx[i] = base as usize; // CAST: bin coordinates stay within the padded grid shape
                frac[i] = (t - base).clamp(0.0, 1.0);
            }
            // Iterate the 2^d corners.
            for corner in 0..(1usize << d) {
                let mut w = 1.0;
                let mut node = 0usize;
                for i in 0..d {
                    if corner >> i & 1 == 1 {
                        w *= frac[i];
                        node += (idx[i] + 1) * strides[i];
                    } else {
                        w *= 1.0 - frac[i];
                        node += idx[i] * strides[i];
                    }
                }
                weights[node] += w;
            }
        }

        // Truncated kernel convolution: each output node sums kernel
        // contributions from bin weights within 4 bandwidths per axis.
        // The kernel is separable only for the Gaussian product form, but
        // a direct d-dimensional truncated stencil works for both kinds.
        let mut reach = Vec::with_capacity(d);
        for i in 0..d {
            let r = (4.0 * kernel.bandwidths()[i] / step[i]).ceil() as isize; // CAST: kernel reach in bins is tiny and nonnegative
            reach.push(r);
        }
        let mut values = match method {
            ConvolutionMethod::Direct => {
                direct_convolve(&weights, &shape, &strides, &reach, &step, &kernel)
            }
            ConvolutionMethod::Fft => fft_convolve(&weights, &shape, &reach, &step, &kernel)?,
        };
        let inv_n = 1.0 / n as f64;
        for v in &mut values {
            *v *= inv_n;
        }

        Ok(Self {
            kernel,
            n_train: n,
            dim: d,
            origin,
            step,
            strides,
            shape,
            values,
            evals: AtomicU64::new(0),
        })
    }

    fn strides(shape: &[usize]) -> Vec<usize> {
        row_major_strides(shape)
    }

    /// Total number of grid nodes.
    pub fn grid_nodes(&self) -> usize {
        self.values.len()
    }
}

/// Row-major strides for an n-dimensional shape.
fn row_major_strides(shape: &[usize]) -> Vec<usize> {
    let d = shape.len();
    let mut s = vec![1usize; d];
    for i in (0..d.saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// One truncated-convolution stencil element: a flattened node offset,
/// the kernel value at that displacement, and the per-axis offsets used
/// for boundary checks.
#[derive(Debug, Clone, Copy)]
struct StencilEntry {
    flat: isize,
    k: f64,
    off: [i32; MAX_BINNED_DIM],
}

/// Direct truncated-stencil smoothing: scatter each bin's weight into
/// every output node within the kernel's reach.
fn direct_convolve(
    weights: &[f64],
    shape: &[usize],
    strides: &[usize],
    reach: &[isize],
    step: &[f64],
    kernel: &Kernel,
) -> Vec<f64> {
    let d = shape.len();
    let total_nodes = weights.len();
    let mut values = vec![0.0f64; total_nodes];
    // Precompute the stencil once; the kernel value depends only on the
    // per-axis node offsets. Per-axis offsets are stored explicitly — a
    // flattened signed offset cannot be decoded back into components by
    // division once axes have mixed signs.
    let mut stencil: Vec<StencilEntry> = Vec::new();
    let mut offsets = vec![0isize; d];
    build_stencil(
        &mut stencil,
        &mut offsets,
        0,
        d,
        reach,
        step,
        strides,
        kernel,
    );
    let mut coord = vec![0usize; d];
    for node in 0..total_nodes {
        let w = weights[node];
        // Kernel weights are ≥ 0; `<= 0.0` skips empty cells without a
        // bit-exact float compare.
        if w <= 0.0 {
            continue;
        }
        // Decode the node's coordinates to respect grid borders.
        let mut rem = node;
        for i in 0..d {
            coord[i] = rem / strides[i];
            rem %= strides[i];
        }
        'stencil: for entry in &stencil {
            for i in 0..d {
                let c = coord[i] as isize + entry.off[i] as isize; // CAST: bin coordinates stay within the padded grid shape
                if c < 0 || c >= shape[i] as isize {
                    // CAST: bin coordinates stay within the padded grid shape
                    continue 'stencil;
                }
            }
            let target = node as isize + entry.flat; // CAST: bin coordinates stay within the padded grid shape
            values[target as usize] += w * entry.k; // CAST: bin coordinates stay within the padded grid shape
        }
    }
    values
}

/// FFT smoothing (Silverman 1982): zero-pad each axis past the kernel
/// reach to a power of two, place the truncated kernel with negative
/// offsets wrapped, and take the circular convolution — which equals the
/// linear convolution on the original grid region.
fn fft_convolve(
    weights: &[f64],
    shape: &[usize],
    reach: &[isize],
    step: &[f64],
    kernel: &Kernel,
) -> tkdc_common::Result<Vec<f64>> {
    use tkdc_common::fft::{convolve_nd_circular, next_pow2};
    let d = shape.len();
    let padded: Vec<usize> = (0..d)
        .map(|i| next_pow2(shape[i] + 2 * reach[i] as usize)) // CAST: reach is nonnegative
        .collect();
    let padded_total: usize = padded.iter().product();
    let pstrides = row_major_strides(&padded);
    // Scatter bin weights into the padded grid.
    let strides = row_major_strides(shape);
    let mut a = vec![0.0f64; padded_total];
    let mut coord = vec![0usize; d];
    for (node, &w) in weights.iter().enumerate() {
        // Kernel weights are ≥ 0; `<= 0.0` skips empty cells without a
        // bit-exact float compare.
        if w <= 0.0 {
            continue;
        }
        let mut rem = node;
        let mut target = 0usize;
        for i in 0..d {
            coord[i] = rem / strides[i];
            rem %= strides[i];
            target += coord[i] * pstrides[i];
        }
        a[target] = w;
    }
    // Kernel grid with wrapped negative offsets.
    let mut b = vec![0.0f64; padded_total];
    let mut offs = vec![0isize; d];
    fill_kernel_grid(
        &mut b, &mut offs, 0, d, reach, step, &padded, &pstrides, kernel,
    );
    let conv = convolve_nd_circular(&a, &b, &padded)?;
    // Gather the original grid region.
    let mut values = vec![0.0f64; weights.len()];
    for (node, out) in values.iter_mut().enumerate() {
        let mut rem = node;
        let mut src = 0usize;
        for i in 0..d {
            let c = rem / strides[i];
            rem %= strides[i];
            src += c * pstrides[i];
        }
        *out = conv[src];
    }
    Ok(values)
}

/// Recursively places the truncated kernel onto the padded grid, wrapping
/// negative offsets (circular layout).
#[allow(clippy::too_many_arguments)]
fn fill_kernel_grid(
    out: &mut [f64],
    offs: &mut [isize],
    axis: usize,
    d: usize,
    reach: &[isize],
    step: &[f64],
    padded: &[usize],
    pstrides: &[usize],
    kernel: &Kernel,
) {
    if axis == d {
        let mut diff = vec![0.0; d];
        let mut idx = 0usize;
        for i in 0..d {
            diff[i] = offs[i] as f64 * step[i];
            let wrapped = offs[i].rem_euclid(padded[i] as isize) as usize; // CAST: rem_euclid lands in [0, padded), and isize -> usize keeps it
            idx += wrapped * pstrides[i];
        }
        let k = kernel.eval_scaled_sq(kernel.scaled_sq_norm(&diff));
        if k > 0.0 {
            out[idx] += k;
        }
        return;
    }
    for o in -reach[axis]..=reach[axis] {
        offs[axis] = o;
        fill_kernel_grid(
            out,
            offs,
            axis + 1,
            d,
            reach,
            step,
            padded,
            pstrides,
            kernel,
        );
    }
}

/// Recursively enumerates the truncated stencil offsets, storing the flat
/// offset and the kernel value of the displacement vector.
#[allow(clippy::too_many_arguments)]
fn build_stencil(
    out: &mut Vec<StencilEntry>,
    offsets: &mut [isize],
    axis: usize,
    d: usize,
    reach: &[isize],
    step: &[f64],
    strides: &[usize],
    kernel: &Kernel,
) {
    if axis == d {
        let mut diff = vec![0.0; d];
        let mut flat = 0isize;
        let mut off = [0i32; MAX_BINNED_DIM];
        for i in 0..d {
            diff[i] = offsets[i] as f64 * step[i];
            flat += offsets[i] * strides[i] as isize; // CAST: strides fit isize for any grid that fits in memory
            off[i] = offsets[i] as i32; // CAST: per-axis offsets are within the tiny kernel reach
        }
        let u = kernel.scaled_sq_norm(&diff);
        let k = kernel.eval_scaled_sq(u);
        if k > 0.0 {
            out.push(StencilEntry { flat, k, off });
        }
        return;
    }
    for o in -reach[axis]..=reach[axis] {
        offsets[axis] = o;
        build_stencil(out, offsets, axis + 1, d, reach, step, strides, kernel);
    }
}

impl DensityEstimator for BinnedKde {
    fn density(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: x.len(),
            });
        }
        // ORDERING: Relaxed — eval counters are diagnostics folded
        // after thread join; the RMW is atomic under any ordering.
        self.evals.fetch_add(1, Ordering::Relaxed);
        // Multilinear interpolation over the enclosing cell; queries
        // outside the (padded) grid have ~zero density by construction.
        let d = self.dim;
        let strides = &self.strides;
        let mut idx = [0usize; MAX_BINNED_DIM];
        let mut frac = [0.0f64; MAX_BINNED_DIM];
        for i in 0..d {
            let t = (x[i] - self.origin[i]) / self.step[i];
            if t < 0.0 || t > (self.shape[i] - 1) as f64 {
                return Ok(0.0);
            }
            let base = t.floor().min((self.shape[i] - 2) as f64);
            idx[i] = base as usize; // CAST: bin coordinates stay within the padded grid shape
            frac[i] = t - base;
        }
        let mut acc = 0.0;
        for corner in 0..(1usize << d) {
            let mut w = 1.0;
            let mut node = 0usize;
            for i in 0..d {
                if corner >> i & 1 == 1 {
                    w *= frac[i];
                    node += (idx[i] + 1) * strides[i];
                } else {
                    w *= 1.0 - frac[i];
                    node += idx[i] * strides[i];
                }
            }
            acc += w * self.values[node];
        }
        Ok(acc)
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    fn n_train(&self) -> usize {
        self.n_train
    }

    fn kernel_evals(&self) -> u64 {
        // ORDERING: Relaxed — read after the batch joins (or
        // single-threaded); staleness mid-batch is acceptable.
        self.evals.load(Ordering::Relaxed)
    }

    fn reset_kernel_evals(&self) {
        // ORDERING: Relaxed — reset between benchmark phases, never
        // concurrent with counting.
        self.evals.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;
    use crate::simple::NaiveKde;
    use tkdc_common::Rng;

    fn blob(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.normal(0.0, 1.0);
            }
            m.push_row(&row).unwrap();
        }
        m
    }

    #[test]
    fn close_to_naive_in_1d() {
        let data = blob(2000, 1, 53);
        let binned = BinnedKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        let naive = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        for i in -20..=20 {
            let q = [i as f64 * 0.15];
            let a = binned.density(&q).unwrap();
            let b = naive.density(&q).unwrap();
            assert!(
                (a - b).abs() < 0.01 * b.max(0.05),
                "binned {a} vs naive {b} at {q:?}"
            );
        }
    }

    #[test]
    fn close_to_naive_in_2d() {
        let data = blob(1500, 2, 59);
        let binned = BinnedKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        let naive = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        let mut rng = Rng::seed_from(61);
        for _ in 0..25 {
            let q = [rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)];
            let a = binned.density(&q).unwrap();
            let b = naive.density(&q).unwrap();
            assert!(
                (a - b).abs() < 0.05 * b.max(0.02),
                "binned {a} vs naive {b} at {q:?}"
            );
        }
    }

    #[test]
    fn coarse_grid_degrades_accuracy() {
        // The d=4 / 21-node regime: error grows but stays sane.
        let data = blob(800, 2, 67);
        let coarse = BinnedKde::fit_with_grid(&data, KernelKind::Gaussian, 1.0, 9).unwrap();
        let fine = BinnedKde::fit_with_grid(&data, KernelKind::Gaussian, 1.0, 151).unwrap();
        let naive = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        let q = [0.3, -0.2];
        let err_coarse = (coarse.density(&q).unwrap() - naive.density(&q).unwrap()).abs();
        let err_fine = (fine.density(&q).unwrap() - naive.density(&q).unwrap()).abs();
        assert!(err_fine <= err_coarse + 1e-9, "{err_fine} vs {err_coarse}");
    }

    #[test]
    fn mass_is_approximately_conserved_1d() {
        let data = blob(500, 1, 71);
        let binned = BinnedKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        // Integrate the interpolated density over the grid span.
        let lo = binned.origin[0];
        let hi = binned.origin[0] + binned.step[0] * (binned.shape[0] - 1) as f64;
        let steps = 4000;
        let dx = (hi - lo) / steps as f64;
        let mut integral = 0.0;
        for i in 0..steps {
            let x = lo + (i as f64 + 0.5) * dx;
            integral += binned.density(&[x]).unwrap() * dx;
        }
        assert!((integral - 1.0).abs() < 0.01, "integral {integral}");
    }

    #[test]
    fn outside_grid_is_zero() {
        let data = blob(200, 2, 73);
        let binned = BinnedKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        assert_eq!(binned.density(&[1e6, 0.0]).unwrap(), 0.0);
    }

    #[test]
    fn rejects_unsupported_dims() {
        let data = blob(100, 5, 79);
        assert!(BinnedKde::fit(&data, KernelKind::Gaussian, 1.0).is_err());
        let d2 = blob(100, 2, 79);
        assert!(BinnedKde::fit_with_grid(&d2, KernelKind::Gaussian, 1.0, 1).is_err());
        let empty = Matrix::with_cols(2);
        assert!(BinnedKde::fit(&empty, KernelKind::Gaussian, 1.0).is_err());
    }

    #[test]
    fn fft_matches_direct_convolution_1d() {
        let data = blob(600, 1, 91);
        let direct = BinnedKde::fit_with_method(
            &data,
            KernelKind::Gaussian,
            1.0,
            128,
            ConvolutionMethod::Direct,
        )
        .unwrap();
        let fft = BinnedKde::fit_with_method(
            &data,
            KernelKind::Gaussian,
            1.0,
            128,
            ConvolutionMethod::Fft,
        )
        .unwrap();
        for i in -15..=15 {
            let q = [i as f64 * 0.2];
            let a = direct.density(&q).unwrap();
            let b = fft.density(&q).unwrap();
            assert!((a - b).abs() < 1e-10, "direct {a} vs fft {b} at {q:?}");
        }
    }

    #[test]
    fn fft_matches_direct_convolution_2d() {
        let data = blob(500, 2, 93);
        let direct = BinnedKde::fit_with_method(
            &data,
            KernelKind::Gaussian,
            1.0,
            48,
            ConvolutionMethod::Direct,
        )
        .unwrap();
        let fft = BinnedKde::fit_with_method(
            &data,
            KernelKind::Gaussian,
            1.0,
            48,
            ConvolutionMethod::Fft,
        )
        .unwrap();
        let mut rng = Rng::seed_from(95);
        for _ in 0..20 {
            let q = [rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)];
            let a = direct.density(&q).unwrap();
            let b = fft.density(&q).unwrap();
            assert!((a - b).abs() < 1e-10, "direct {a} vs fft {b} at {q:?}");
        }
    }

    #[test]
    fn fft_matches_direct_with_epanechnikov() {
        let data = blob(400, 2, 97);
        let direct = BinnedKde::fit_with_method(
            &data,
            KernelKind::Epanechnikov,
            1.0,
            32,
            ConvolutionMethod::Direct,
        )
        .unwrap();
        let fft = BinnedKde::fit_with_method(
            &data,
            KernelKind::Epanechnikov,
            1.0,
            32,
            ConvolutionMethod::Fft,
        )
        .unwrap();
        let q = [0.1, -0.3];
        assert!((direct.density(&q).unwrap() - fft.density(&q).unwrap()).abs() < 1e-10);
    }

    #[test]
    fn query_counter_counts_queries() {
        let data = blob(100, 2, 83);
        let binned = BinnedKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        binned.density(&[0.0, 0.0]).unwrap();
        binned.density(&[1.0, 1.0]).unwrap();
        assert_eq!(binned.kernel_evals(), 2);
    }
}
