//! The naïve KDE baseline ("simple" in Table 2): iterates through every
//! training point for every query. Exact, `O(n)` per query.

use crate::estimator::DensityEstimator;
use tkdc_common::error::{Error, Result};
use tkdc_common::Matrix;
use tkdc_kernel::{scotts_rule, Kernel, KernelKind};
use tkdc_sync::atomic::{AtomicU64, Ordering};

/// Exact kernel density estimator by direct summation.
#[derive(Debug)]
pub struct NaiveKde {
    data: Matrix,
    kernel: Kernel,
    evals: AtomicU64,
}

impl NaiveKde {
    /// Fits the estimator with Scott's-rule bandwidths scaled by `b`.
    pub fn fit(data: &Matrix, kind: KernelKind, b: f64) -> Result<Self> {
        if data.rows() == 0 {
            return Err(Error::EmptyInput("naive KDE training data"));
        }
        let h = scotts_rule(data, b)?;
        Ok(Self {
            data: data.clone(),
            kernel: Kernel::new(kind, h)?,
            evals: AtomicU64::new(0),
        })
    }
}

impl DensityEstimator for NaiveKde {
    fn density(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.data.cols() {
            return Err(Error::DimensionMismatch {
                expected: self.data.cols(),
                actual: x.len(),
            });
        }
        let mut acc = 0.0;
        for row in self.data.iter_rows() {
            acc += self.kernel.eval_pair(x, row);
        }
        self.evals
            // ORDERING: Relaxed — eval counters are diagnostics folded
            // after thread join; the RMW is atomic under any ordering.
            .fetch_add(self.data.rows() as u64, Ordering::Relaxed); // CAST: usize -> u64 is lossless on 64-bit targets
        Ok(acc / self.data.rows() as f64)
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    fn n_train(&self) -> usize {
        self.data.rows()
    }

    fn kernel_evals(&self) -> u64 {
        // ORDERING: Relaxed — read after the batch joins (or
        // single-threaded); staleness mid-batch is acceptable.
        self.evals.load(Ordering::Relaxed)
    }

    fn reset_kernel_evals(&self) {
        // ORDERING: Relaxed — reset between benchmark phases, never
        // concurrent with counting.
        self.evals.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::Rng;

    fn blob(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(2);
        for _ in 0..n {
            m.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
                .unwrap();
        }
        m
    }

    #[test]
    fn density_is_average_of_kernels() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 0.0]]).unwrap();
        let kde = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        let q = [1.0, 0.0];
        let k = kde.kernel();
        let expected = 0.5 * (k.eval_pair(&q, data.row(0)) + k.eval_pair(&q, data.row(1)));
        assert!((kde.density(&q).unwrap() - expected).abs() < 1e-15);
    }

    #[test]
    fn density_integrates_to_one_1d() {
        let mut rng = Rng::seed_from(3);
        let mut m = Matrix::with_cols(1);
        for _ in 0..200 {
            m.push_row(&[rng.normal(0.0, 1.0)]).unwrap();
        }
        let kde = NaiveKde::fit(&m, KernelKind::Gaussian, 1.0).unwrap();
        let mut integral = 0.0;
        let steps = 2000;
        let (lo, hi) = (-8.0, 8.0);
        let dx = (hi - lo) / steps as f64;
        for i in 0..steps {
            let x = lo + (i as f64 + 0.5) * dx;
            integral += kde.density(&[x]).unwrap() * dx;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn counts_kernel_evaluations() {
        let data = blob(50, 7);
        let kde = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        kde.density(&[0.0, 0.0]).unwrap();
        kde.density(&[1.0, 1.0]).unwrap();
        assert_eq!(kde.kernel_evals(), 100);
        kde.reset_kernel_evals();
        assert_eq!(kde.kernel_evals(), 0);
    }

    #[test]
    fn threshold_estimate_separates_tail() {
        let data = blob(500, 11);
        let kde = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        let t = kde.estimate_threshold(&data, 0.05).unwrap();
        assert!(t > 0.0);
        // Center density far above threshold, remote point below.
        assert!(kde.density(&[0.0, 0.0]).unwrap() > t);
        assert!(kde.density(&[9.0, 9.0]).unwrap() < t);
        let labels = kde
            .classify_batch(&data, t)
            .unwrap()
            .iter()
            .filter(|&&h| !h)
            .count();
        let frac = labels as f64 / data.rows() as f64;
        assert!((frac - 0.05).abs() < 0.03, "LOW fraction {frac}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let empty = Matrix::with_cols(2);
        assert!(NaiveKde::fit(&empty, KernelKind::Gaussian, 1.0).is_err());
        let data = blob(10, 1);
        let kde = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        assert!(kde.density(&[0.0]).is_err());
    }
}
