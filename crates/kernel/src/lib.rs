#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tkdc-kernel
//!
//! Kernel functions and bandwidth selection for kernel density estimation,
//! matching §2.4 of the tKDC paper.
//!
//! The default estimator is the Gaussian **product kernel** with a diagonal
//! bandwidth matrix `H = diag(h₁², …, h_d²)` chosen by Scott's rule
//! (`h_i = b · n^{-1/(d+4)} · σ_i`). An Epanechnikov kernel with compact
//! support is provided as an extension (its exact-zero tails let spatial
//! bounds prune even more aggressively).
//!
//! Performance notes: kernels are evaluated millions of times per query
//! workload, so the kernel pre-computes inverse bandwidths and the
//! normalization constant, and all evaluation goes through a *scaled
//! squared distance* `u = Σ ((x_i − y_i)/h_i)²` so bounding-box bounds and
//! point evaluations share one code path.

pub mod bandwidth;
pub mod kernel;

pub use bandwidth::{lscv_select, scotts_rule, scotts_rule_from_stds, silverman_rule};
pub use kernel::{Kernel, KernelKind};
