//! Bandwidth selection.
//!
//! The paper adopts product kernels with a diagonal bandwidth matrix and
//! Scott's rule per dimension (Eq. 4): `h_i = b · n^{-1/(d+4)} · σ_i`,
//! where `b` is a user scale factor and `σ_i` the per-column standard
//! deviation. These are near-optimal for multivariate normal data and a
//! reasonable default elsewhere.

use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::{stats, Matrix};

/// Scott's-rule bandwidths for a dataset (Eq. 4 of the paper).
///
/// Degenerate columns (σ_i = 0, e.g. a constant sensor) would produce a
/// zero bandwidth and an unnormalizable kernel; for those columns the
/// standard deviation is replaced by 1.0 so the kernel treats them as
/// unit-scale. Callers that care should drop constant columns instead.
///
/// # Errors
/// Fails on an empty dataset or non-positive `b`.
pub fn scotts_rule(data: &Matrix, b: f64) -> Result<Vec<f64>> {
    if data.rows() == 0 {
        return Err(Error::EmptyInput("bandwidth training data"));
    }
    let stds = stats::column_stds(data);
    scotts_rule_from_stds(&stds, data.rows(), b)
}

/// Scott's rule from pre-computed standard deviations.
///
/// Exposed separately so the threshold bootstrap can recompute bandwidths
/// for growing training subsets without rescanning columns it has already
/// summarized.
pub fn scotts_rule_from_stds(stds: &[f64], n: usize, b: f64) -> Result<Vec<f64>> {
    if n == 0 {
        return Err(Error::EmptyInput("bandwidth training data"));
    }
    if !b.is_finite() || b <= 0.0 {
        return Err(invalid_param("b", format!("must be positive, got {b}")));
    }
    let d = stds.len();
    if d == 0 {
        return Err(Error::EmptyInput("bandwidth dimensions"));
    }
    let factor = b * (n as f64).powf(-1.0 / (d as f64 + 4.0));
    Ok(stds
        .iter()
        .map(|&s| {
            let s = if s > 0.0 { s } else { 1.0 };
            factor * s
        })
        .collect())
}

/// Silverman's rule-of-thumb bandwidths:
/// `h_i = b · (4/(d+2))^{1/(d+4)} · n^{-1/(d+4)} · σ_i`.
///
/// Differs from Scott's rule only by the `(4/(d+2))^{1/(d+4)}` factor
/// (≈0.96 at d=2); both are exact for multivariate normals. Provided for
/// completeness with the bandwidth-selection literature the paper cites
/// (§2.4, refs [31, 44]).
pub fn silverman_rule(data: &Matrix, b: f64) -> Result<Vec<f64>> {
    let d = data.cols() as f64;
    let factor = (4.0 / (d + 2.0)).powf(1.0 / (d + 4.0));
    scotts_rule(data, b * factor)
}

/// Least-squares cross-validation (LSCV) selection of the bandwidth
/// scale factor `b` on top of Scott's rule.
///
/// Minimizes the unbiased risk estimate of the integrated squared error
/// over a grid of candidate scale factors:
///
/// ```text
/// LSCV(h) = ∫ f̂² − (2/n) Σᵢ f̂₋ᵢ(xᵢ)
/// ```
///
/// For Gaussian product kernels, `∫ f̂²` has the closed form
/// `(1/n²) Σᵢⱼ K_{√2·h}(xᵢ − xⱼ)` (a convolution of the kernel with
/// itself), so each candidate costs one O(n²) pass — run it on a
/// subsample for large n.
///
/// Returns the best `(scale_factor, bandwidths)` among `candidates`.
///
/// # Errors
/// Fails on empty data/candidates or non-Gaussian-suitable inputs
/// (the closed form here is Gaussian-specific).
pub fn lscv_select(data: &Matrix, candidates: &[f64]) -> Result<(f64, Vec<f64>)> {
    use crate::kernel::{Kernel, KernelKind};
    let n = data.rows();
    if n < 3 {
        return Err(Error::EmptyInput("LSCV needs at least 3 points"));
    }
    if candidates.is_empty() {
        return Err(Error::EmptyInput("LSCV candidate list"));
    }
    let base = scotts_rule(data, 1.0)?;
    let mut best: Option<(f64, f64)> = None; // (score, b)
    for &b in candidates {
        if !b.is_finite() || b <= 0.0 {
            return Err(invalid_param(
                "candidates",
                format!("scale factors must be positive, got {b}"),
            ));
        }
        let h: Vec<f64> = base.iter().map(|&x| x * b).collect();
        let kernel = Kernel::new(KernelKind::Gaussian, h.clone())?;
        let wide = Kernel::new(
            KernelKind::Gaussian,
            h.iter().map(|&x| x * std::f64::consts::SQRT_2).collect(),
        )?;
        // ∫f̂² = (1/n²) Σ_ij K_{√2h}(x_i − x_j) — includes i == j.
        // Leave-one-out term: (2/(n(n−1))) Σ_{i≠j} K_h(x_i − x_j).
        let mut sq_term = 0.0;
        let mut loo_term = 0.0;
        for i in 0..n {
            let xi = data.row(i);
            sq_term += wide.max_value(); // j == i contribution
            for j in (i + 1)..n {
                let xj = data.row(j);
                sq_term += 2.0 * wide.eval_pair(xi, xj);
                loo_term += 2.0 * kernel.eval_pair(xi, xj);
            }
        }
        let nf = n as f64;
        let score = sq_term / (nf * nf) - 2.0 * loo_term / (nf * (nf - 1.0));
        if best.is_none_or(|(s, _)| score < s) {
            best = Some((score, b));
        }
    }
    // INVARIANT: the candidate loop ran at least once, so best is Some.
    let (_, b) = best.expect("candidates verified non-empty");
    Ok((b, base.iter().map(|&x| x * b).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_formula() {
        // 3 columns with known stds, n = 1000, d = 3.
        let stds = [1.0, 2.0, 0.5];
        let n = 1000;
        let b = 1.0;
        let hs = scotts_rule_from_stds(&stds, n, b).unwrap();
        let factor = (n as f64).powf(-1.0 / 7.0);
        assert!((hs[0] - factor).abs() < 1e-12);
        assert!((hs[1] - 2.0 * factor).abs() < 1e-12);
        assert!((hs[2] - 0.5 * factor).abs() < 1e-12);
    }

    #[test]
    fn scale_factor_multiplies() {
        let stds = [1.0];
        let h1 = scotts_rule_from_stds(&stds, 100, 1.0).unwrap();
        let h3 = scotts_rule_from_stds(&stds, 100, 3.0).unwrap();
        assert!((h3[0] / h1[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_shrinks_with_n() {
        let stds = [1.0, 1.0];
        let h_small = scotts_rule_from_stds(&stds, 100, 1.0).unwrap();
        let h_large = scotts_rule_from_stds(&stds, 1_000_000, 1.0).unwrap();
        assert!(h_large[0] < h_small[0]);
        // Exponent check: ratio should be (10^4)^(-1/6).
        let expected = 10_000f64.powf(-1.0 / 6.0);
        assert!((h_large[0] / h_small[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn constant_column_falls_back_to_unit_sigma() {
        let hs = scotts_rule_from_stds(&[0.0, 2.0], 16, 1.0).unwrap();
        let factor = 16f64.powf(-1.0 / 6.0);
        assert!((hs[0] - factor).abs() < 1e-12);
        assert!((hs[1] - 2.0 * factor).abs() < 1e-12);
    }

    #[test]
    fn from_matrix_uses_column_stds() {
        let m = Matrix::from_rows(&[vec![0.0], vec![2.0], vec![4.0]]).unwrap();
        let hs = scotts_rule(&m, 1.0).unwrap();
        // σ = sqrt(8/3); n = 3; d = 1 → factor 3^{-1/5}
        let sigma = (8.0f64 / 3.0).sqrt();
        let expected = sigma * 3f64.powf(-0.2);
        assert!((hs[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(scotts_rule_from_stds(&[1.0], 0, 1.0).is_err());
        assert!(scotts_rule_from_stds(&[], 10, 1.0).is_err());
        assert!(scotts_rule_from_stds(&[1.0], 10, 0.0).is_err());
        assert!(scotts_rule_from_stds(&[1.0], 10, f64::NAN).is_err());
        let empty = Matrix::with_cols(2);
        assert!(scotts_rule(&empty, 1.0).is_err());
    }

    fn gaussian_blob(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = tkdc_common::Rng::seed_from(seed);
        let mut m = Matrix::with_cols(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.standard_normal();
            }
            m.push_row(&row).unwrap();
        }
        m
    }

    #[test]
    fn silverman_close_to_scott() {
        let data = gaussian_blob(500, 2, 1);
        let scott = scotts_rule(&data, 1.0).unwrap();
        let silver = silverman_rule(&data, 1.0).unwrap();
        // The Silverman factor at d=2 is (4/4)^(1/6) = 1.
        for (a, b) in scott.iter().zip(&silver) {
            assert!((a - b).abs() < 1e-12);
        }
        // At d=1 it's (4/3)^(1/5) ≈ 1.059.
        let d1 = gaussian_blob(500, 1, 2);
        let ratio = silverman_rule(&d1, 1.0).unwrap()[0] / scotts_rule(&d1, 1.0).unwrap()[0];
        assert!((ratio - (4.0f64 / 3.0).powf(0.2)).abs() < 1e-12);
    }

    #[test]
    fn lscv_picks_near_unit_scale_on_gaussian_data() {
        // Scott's rule is near-optimal for Gaussians, so LSCV should
        // choose a scale close to 1 (not an extreme candidate).
        let data = gaussian_blob(600, 2, 3);
        let candidates = [0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.5, 5.0];
        let (b, h) = lscv_select(&data, &candidates).unwrap();
        assert!(
            (0.5..=1.5).contains(&b),
            "LSCV picked scale {b} on Gaussian data"
        );
        let base = scotts_rule(&data, 1.0).unwrap();
        assert!((h[0] / base[0] - b).abs() < 1e-12);
    }

    #[test]
    fn lscv_adapts_to_clustered_data() {
        // Two tight clusters: the global σ (≈3) inflates Scott's base
        // bandwidth far beyond the per-cluster optimum (σ≈0.3), so LSCV
        // should choose a scale well below 1 — but not a degenerate one,
        // and certainly not an oversmoothing one.
        let mut rng = tkdc_common::Rng::seed_from(5);
        let mut m = Matrix::with_cols(1);
        for _ in 0..300 {
            let c = if rng.next_f64() < 0.5 { -3.0 } else { 3.0 };
            m.push_row(&[c + rng.normal(0.0, 0.3)]).unwrap();
        }
        // Per-cluster optimum ≈ 0.3·150^{-1/5} ≈ 0.11 ⇒ scale ≈ 0.11 on a
        // Scott base of ≈0.96.
        let (b, _) = lscv_select(&m, &[0.002, 0.02, 0.1, 0.5, 1.0, 4.0]).unwrap();
        assert!(b >= 0.02, "LSCV picked degenerate scale {b}");
        assert!(b <= 0.5, "LSCV failed to adapt to clusters, picked {b}");
    }

    #[test]
    fn lscv_rejects_bad_inputs() {
        let data = gaussian_blob(10, 2, 7);
        assert!(lscv_select(&data, &[]).is_err());
        assert!(lscv_select(&data, &[0.0]).is_err());
        assert!(lscv_select(&data, &[-1.0]).is_err());
        let tiny = gaussian_blob(2, 2, 9);
        assert!(lscv_select(&tiny, &[1.0]).is_err());
    }
}
