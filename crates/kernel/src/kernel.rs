//! Kernel functions over diagonal-bandwidth product form.
//!
//! Every evaluation is phrased in terms of the *scaled squared distance*
//! `u(x, y) = Σ_i ((x_i − y_i) / h_i)²`. Both supported kernels are
//! monotonically non-increasing in `u`, which is exactly the property the
//! spatial bounds need: the closest corner of a bounding box maximizes the
//! kernel and the farthest corner minimizes it.

use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::order::ln_gamma;

/// The kernel family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Gaussian kernel (Eq. 2 of the paper): smooth, infinite support.
    Gaussian,
    /// Multivariate Epanechnikov kernel: compact support `u ≤ 1`,
    /// optimal AMISE efficiency; extension beyond the paper's default.
    Epanechnikov,
}

/// A kernel bound to a concrete diagonal bandwidth.
///
/// ```
/// use tkdc_kernel::{Kernel, KernelKind};
/// let k = Kernel::new(KernelKind::Gaussian, vec![1.0, 2.0]).unwrap();
/// let at_zero = k.eval_pair(&[0.0, 0.0], &[0.0, 0.0]);
/// assert!((at_zero - k.max_value()).abs() < 1e-15);
/// ```
#[derive(Debug, Clone)]
pub struct Kernel {
    kind: KernelKind,
    /// Per-dimension bandwidths `h_i`.
    h: Vec<f64>,
    /// Pre-computed `1 / h_i` for the hot loop.
    inv_h: Vec<f64>,
    /// Normalization so the kernel integrates to one over `R^d`.
    norm: f64,
}

impl Kernel {
    /// Binds a kernel family to a bandwidth vector.
    ///
    /// # Errors
    /// Fails when the bandwidth vector is empty or contains non-positive
    /// or non-finite entries.
    pub fn new(kind: KernelKind, h: Vec<f64>) -> Result<Self> {
        if h.is_empty() {
            return Err(Error::EmptyInput("bandwidth vector"));
        }
        for &hi in &h {
            if !hi.is_finite() || hi <= 0.0 {
                return Err(invalid_param(
                    "h",
                    format!("bandwidths must be positive and finite, got {hi}"),
                ));
            }
        }
        let d = h.len();
        let log_h_prod: f64 = h.iter().map(|hi| hi.ln()).sum();
        let norm = match kind {
            KernelKind::Gaussian => {
                // (2π)^{-d/2} / Π h_i
                (-(d as f64) / 2.0 * (2.0 * std::f64::consts::PI).ln() - log_h_prod).exp()
            }
            KernelKind::Epanechnikov => {
                // K(z) = c_d (1 - ||z||²) on the unit ball of the scaled
                // space; ∫(1-||z||²)dz over the ball = V_d · 2/(d+2), so
                // c_d = (d+2) / (2 V_d), with V_d = π^{d/2}/Γ(d/2+1).
                let df = d as f64;
                let ln_vd = df / 2.0 * std::f64::consts::PI.ln() - ln_gamma(df / 2.0 + 1.0);
                (((df + 2.0) / 2.0).ln() - ln_vd - log_h_prod).exp()
            }
        };
        let inv_h = h.iter().map(|hi| 1.0 / hi).collect();
        Ok(Self {
            kind,
            h,
            inv_h,
            norm,
        })
    }

    /// Gaussian kernel with the given bandwidths (the paper's default).
    pub fn gaussian(h: Vec<f64>) -> Result<Self> {
        Self::new(KernelKind::Gaussian, h)
    }

    /// The kernel family.
    #[inline]
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.h.len()
    }

    /// Per-dimension bandwidths.
    #[inline]
    pub fn bandwidths(&self) -> &[f64] {
        &self.h
    }

    /// Pre-computed reciprocal bandwidths `1/h_i`, exposed for callers
    /// (the spatial index) that compute scaled box distances inline.
    #[inline]
    pub fn inv_bandwidths(&self) -> &[f64] {
        &self.inv_h
    }

    /// Scaled squared distance `Σ ((x_i − y_i)/h_i)²`.
    ///
    /// # Panics
    /// Debug-asserts matching dimensions; in release the shorter slice
    /// governs (callers are trusted on the hot path).
    #[inline]
    pub fn scaled_sq_dist(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.inv_h.len());
        debug_assert_eq!(y.len(), self.inv_h.len());
        let mut acc = 0.0;
        for i in 0..self.inv_h.len() {
            let z = (x[i] - y[i]) * self.inv_h[i];
            acc += z * z;
        }
        acc
    }

    /// Scaled squared norm of a raw displacement vector `Σ (d_i/h_i)²`.
    #[inline]
    pub fn scaled_sq_norm(&self, diff: &[f64]) -> f64 {
        debug_assert_eq!(diff.len(), self.inv_h.len());
        let mut acc = 0.0;
        for i in 0..self.inv_h.len() {
            let z = diff[i] * self.inv_h[i];
            acc += z * z;
        }
        acc
    }

    /// Kernel value as a function of scaled squared distance `u`.
    ///
    /// Monotonically non-increasing in `u` for both families — the
    /// property all spatial pruning bounds rely on.
    #[inline]
    pub fn eval_scaled_sq(&self, u: f64) -> f64 {
        // NaN is explicitly tolerated: a NaN distance (poisoned input
        // coordinates) must flow through as a NaN kernel value — callers
        // order densities with total_cmp — not abort in debug builds.
        debug_assert!(
            u >= 0.0 || u.is_nan(),
            "scaled squared distance must not be negative"
        );
        match self.kind {
            KernelKind::Gaussian => self.norm * (-0.5 * u).exp(),
            KernelKind::Epanechnikov => {
                if u >= 1.0 {
                    0.0
                } else {
                    self.norm * (1.0 - u)
                }
            }
        }
    }

    /// Kernel value between two points.
    #[inline]
    pub fn eval_pair(&self, x: &[f64], y: &[f64]) -> f64 {
        self.eval_scaled_sq(self.scaled_sq_dist(x, y))
    }

    /// Sum of kernel values between `x` and every row of a contiguous
    /// row-major `block` (`block.len()` must be a multiple of `dim`).
    ///
    /// This is the blocked leaf-evaluation fast path used by the
    /// `BoundDensity` traversal: instead of one virtual-ish
    /// [`Self::eval_pair`] per training point, it computes scaled squared
    /// distances for up to 32 rows at a time into a stack buffer (with
    /// the dimension loop unrolled), then batches the transcendental
    /// pass over that buffer. For compact-support kernels rows outside
    /// the support are skipped before any value work.
    ///
    /// Equivalent to `block.chunks(dim).map(|p| eval_pair(x, p)).sum()`
    /// up to floating-point summation order.
    pub fn sum_block(&self, x: &[f64], block: &[f64]) -> f64 {
        let d = self.inv_h.len();
        debug_assert_eq!(x.len(), d);
        debug_assert!(block.len().is_multiple_of(d));
        const BLOCK: usize = 32;
        let mut u = [0.0f64; BLOCK];
        let mut total = 0.0;
        for rows in block.chunks(BLOCK * d) {
            let m = rows.len() / d;
            // Distance pass: unrolled per-dimension loops with the
            // reciprocal bandwidths hoisted into locals, writing into the
            // stack buffer so the value pass below runs over registers
            // and one cache line.
            match d {
                1 => {
                    let (x0, i0) = (x[0], self.inv_h[0]);
                    for (j, p) in rows.chunks_exact(1).enumerate() {
                        let z0 = (x0 - p[0]) * i0;
                        u[j] = z0 * z0;
                    }
                }
                2 => {
                    let (x0, x1) = (x[0], x[1]);
                    let (i0, i1) = (self.inv_h[0], self.inv_h[1]);
                    for (j, p) in rows.chunks_exact(2).enumerate() {
                        let z0 = (x0 - p[0]) * i0;
                        let z1 = (x1 - p[1]) * i1;
                        u[j] = z0 * z0 + z1 * z1;
                    }
                }
                3 => {
                    let (x0, x1, x2) = (x[0], x[1], x[2]);
                    let (i0, i1, i2) = (self.inv_h[0], self.inv_h[1], self.inv_h[2]);
                    for (j, p) in rows.chunks_exact(3).enumerate() {
                        let z0 = (x0 - p[0]) * i0;
                        let z1 = (x1 - p[1]) * i1;
                        let z2 = (x2 - p[2]) * i2;
                        u[j] = z0 * z0 + z1 * z1 + z2 * z2;
                    }
                }
                4 => {
                    let (x0, x1, x2, x3) = (x[0], x[1], x[2], x[3]);
                    let (i0, i1, i2, i3) =
                        (self.inv_h[0], self.inv_h[1], self.inv_h[2], self.inv_h[3]);
                    for (j, p) in rows.chunks_exact(4).enumerate() {
                        let z0 = (x0 - p[0]) * i0;
                        let z1 = (x1 - p[1]) * i1;
                        let z2 = (x2 - p[2]) * i2;
                        let z3 = (x3 - p[3]) * i3;
                        u[j] = (z0 * z0 + z1 * z1) + (z2 * z2 + z3 * z3);
                    }
                }
                _ => {
                    let inv = &self.inv_h[..d];
                    for (j, p) in rows.chunks_exact(d).enumerate() {
                        // Four independent accumulators over the
                        // dimension loop keep the FP dependency chain
                        // short in high-d leaves.
                        let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
                        let mut i = 0;
                        while i + 4 <= d {
                            let z0 = (x[i] - p[i]) * inv[i];
                            let z1 = (x[i + 1] - p[i + 1]) * inv[i + 1];
                            let z2 = (x[i + 2] - p[i + 2]) * inv[i + 2];
                            let z3 = (x[i + 3] - p[i + 3]) * inv[i + 3];
                            a0 += z0 * z0;
                            a1 += z1 * z1;
                            a2 += z2 * z2;
                            a3 += z3 * z3;
                            i += 4;
                        }
                        while i < d {
                            let z = (x[i] - p[i]) * inv[i];
                            a0 += z * z;
                            i += 1;
                        }
                        u[j] = (a0 + a1) + (a2 + a3);
                    }
                }
            }
            // Value pass over the buffered distances.
            match self.kind {
                KernelKind::Gaussian => {
                    let mut block_sum = 0.0;
                    for &uj in &u[..m] {
                        block_sum += (-0.5 * uj).exp();
                    }
                    total += block_sum;
                }
                KernelKind::Epanechnikov => {
                    for &uj in &u[..m] {
                        // Early exit outside the support; NaN distances
                        // fall through and poison the sum exactly like
                        // `eval_scaled_sq` would.
                        if uj >= 1.0 {
                            continue;
                        }
                        total += 1.0 - uj;
                    }
                }
            }
        }
        total * self.norm
    }

    /// Weighted sum of kernel values between `x` and every row of a
    /// contiguous row-major `block`: `Σ_j w_j · K(x, p_j)`.
    ///
    /// The weighted companion of [`Self::sum_block`] used by coreset-fit
    /// leaf scans: each point carries a multiplicity-like mass (the
    /// number of original points it stands in for), so the leaf
    /// contribution is the weight-scaled kernel sum. `weights.len()` must
    /// equal the number of rows in `block`. With all weights `1.0` the
    /// result equals `sum_block` up to floating-point summation order.
    pub fn sum_block_weighted(&self, x: &[f64], block: &[f64], weights: &[f64]) -> f64 {
        let d = self.inv_h.len();
        debug_assert_eq!(x.len(), d);
        debug_assert!(block.len().is_multiple_of(d));
        debug_assert_eq!(weights.len(), block.len() / d);
        const BLOCK: usize = 32;
        let mut u = [0.0f64; BLOCK];
        let mut total = 0.0;
        for (chunk_idx, rows) in block.chunks(BLOCK * d).enumerate() {
            let m = rows.len() / d;
            let w = &weights[chunk_idx * BLOCK..chunk_idx * BLOCK + m];
            // Distance pass: same buffered layout as `sum_block` (the
            // unrolled specializations live there; this path trades a
            // little of that for one shared general loop because the
            // value pass is weight-bound anyway).
            let inv = &self.inv_h[..d];
            for (j, p) in rows.chunks_exact(d).enumerate() {
                let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
                let mut i = 0;
                while i + 4 <= d {
                    let z0 = (x[i] - p[i]) * inv[i];
                    let z1 = (x[i + 1] - p[i + 1]) * inv[i + 1];
                    let z2 = (x[i + 2] - p[i + 2]) * inv[i + 2];
                    let z3 = (x[i + 3] - p[i + 3]) * inv[i + 3];
                    a0 += z0 * z0;
                    a1 += z1 * z1;
                    a2 += z2 * z2;
                    a3 += z3 * z3;
                    i += 4;
                }
                while i < d {
                    let z = (x[i] - p[i]) * inv[i];
                    a0 += z * z;
                    i += 1;
                }
                u[j] = (a0 + a1) + (a2 + a3);
            }
            // Weighted value pass over the buffered distances.
            match self.kind {
                KernelKind::Gaussian => {
                    let mut block_sum = 0.0;
                    for (&uj, &wj) in u[..m].iter().zip(w) {
                        block_sum += wj * (-0.5 * uj).exp();
                    }
                    total += block_sum;
                }
                KernelKind::Epanechnikov => {
                    for (&uj, &wj) in u[..m].iter().zip(w) {
                        // Early exit outside the support; NaN distances
                        // fall through and poison the sum exactly like
                        // `eval_scaled_sq` would.
                        if uj >= 1.0 {
                            continue;
                        }
                        total += wj * (1.0 - uj);
                    }
                }
            }
        }
        total * self.norm
    }

    /// Sum of kernel values between `x` and every point of a
    /// *dimension-major* (structure-of-arrays) block: `soa[j·rows + i]`
    /// holds coordinate `j` of point `i`, `soa.len() == dim · rows`.
    ///
    /// The SoA twin of [`Self::sum_block`]. Row-major leaves defeat
    /// autovectorization once `d` exceeds the unrolled specializations:
    /// the distance pass walks memory with stride `d`, so at d = 64 the
    /// "blocked" path *lost* to scalar `eval_pair`. Here the inner loop
    /// runs down a contiguous coordinate column for 32 points at a time
    /// (`u[i] += ((x_j − col[i]) · inv_h_j)²`), which LLVM turns into
    /// clean FMA vector code at any `d`. The value pass (transcendental
    /// / support test) is shared with the row-major path, so the NaN
    /// and compact-support contracts are identical.
    ///
    /// Equivalent to evaluating `eval_pair` per point up to
    /// floating-point summation order — the accumulation order differs
    /// from [`Self::sum_block`] (per-dimension across points instead of
    /// per-point across dimensions), so results agree only to FP
    /// tolerance, never bit-exactly.
    pub fn sum_block_soa(&self, x: &[f64], soa: &[f64], rows: usize) -> f64 {
        let d = self.inv_h.len();
        debug_assert_eq!(x.len(), d);
        debug_assert_eq!(soa.len(), d * rows);
        const TILE: usize = 32;
        let mut u = [0.0f64; TILE];
        let mut total = 0.0;
        let mut base = 0;
        while base < rows {
            let m = TILE.min(rows - base);
            u[..m].fill(0.0);
            // Distance pass: one contiguous column per dimension; the
            // inner loop is stride-1 over both `u` and `col`, which is
            // the shape LLVM autovectorizes regardless of `d`.
            for j in 0..d {
                let xj = x[j];
                let ij = self.inv_h[j];
                let col = &soa[j * rows + base..j * rows + base + m];
                for (uj, &p) in u[..m].iter_mut().zip(col) {
                    let z = (xj - p) * ij;
                    *uj += z * z;
                }
            }
            // Value pass over the buffered distances (same contracts as
            // `sum_block`).
            match self.kind {
                KernelKind::Gaussian => {
                    let mut block_sum = 0.0;
                    for &uj in &u[..m] {
                        block_sum += (-0.5 * uj).exp();
                    }
                    total += block_sum;
                }
                KernelKind::Epanechnikov => {
                    for &uj in &u[..m] {
                        // Early exit outside the support; NaN distances
                        // fall through and poison the sum exactly like
                        // `eval_scaled_sq` would.
                        if uj >= 1.0 {
                            continue;
                        }
                        total += 1.0 - uj;
                    }
                }
            }
            base += m;
        }
        total * self.norm
    }

    /// Weighted sum over a dimension-major block: `Σ_i w_i · K(x, p_i)`
    /// with the same SoA layout as [`Self::sum_block_soa`].
    ///
    /// The SoA twin of [`Self::sum_block_weighted`]; `weights.len()`
    /// must equal `rows`.
    pub fn sum_block_soa_weighted(
        &self,
        x: &[f64],
        soa: &[f64],
        rows: usize,
        weights: &[f64],
    ) -> f64 {
        let d = self.inv_h.len();
        debug_assert_eq!(x.len(), d);
        debug_assert_eq!(soa.len(), d * rows);
        debug_assert_eq!(weights.len(), rows);
        const TILE: usize = 32;
        let mut u = [0.0f64; TILE];
        let mut total = 0.0;
        let mut base = 0;
        while base < rows {
            let m = TILE.min(rows - base);
            u[..m].fill(0.0);
            for j in 0..d {
                let xj = x[j];
                let ij = self.inv_h[j];
                let col = &soa[j * rows + base..j * rows + base + m];
                for (uj, &p) in u[..m].iter_mut().zip(col) {
                    let z = (xj - p) * ij;
                    *uj += z * z;
                }
            }
            let w = &weights[base..base + m];
            match self.kind {
                KernelKind::Gaussian => {
                    let mut block_sum = 0.0;
                    for (&uj, &wj) in u[..m].iter().zip(w) {
                        block_sum += wj * (-0.5 * uj).exp();
                    }
                    total += block_sum;
                }
                KernelKind::Epanechnikov => {
                    for (&uj, &wj) in u[..m].iter().zip(w) {
                        // Early exit outside the support; NaN distances
                        // fall through and poison the sum exactly like
                        // `eval_scaled_sq` would.
                        if uj >= 1.0 {
                            continue;
                        }
                        total += wj * (1.0 - uj);
                    }
                }
            }
            base += m;
        }
        total * self.norm
    }

    /// `K(0)` — the kernel's maximum, used for the self-contribution
    /// correction `f₀ = K(0)/n` (Eq. 1) and the grid's diagonal bound.
    #[inline]
    pub fn max_value(&self) -> f64 {
        self.eval_scaled_sq(0.0)
    }

    /// Scaled radius beyond which the kernel is exactly zero, when the
    /// family has compact support.
    #[inline]
    pub fn support_radius_scaled(&self) -> Option<f64> {
        match self.kind {
            KernelKind::Gaussian => None,
            KernelKind::Epanechnikov => Some(1.0),
        }
    }

    /// Scaled radius `r` such that `K(u) ≤ frac · K(0)` for all `u ≥ r²`.
    ///
    /// Used by the radial baseline to choose a cutoff with a bounded
    /// per-point truncation error.
    pub fn radius_for_value_fraction(&self, frac: f64) -> f64 {
        assert!(frac > 0.0 && frac < 1.0, "frac must be in (0,1)");
        match self.kind {
            KernelKind::Gaussian => (-2.0 * frac.ln()).sqrt(),
            KernelKind::Epanechnikov => (1.0 - frac).sqrt(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn gaussian_matches_closed_form_1d() {
        let k = Kernel::gaussian(vec![2.0]).unwrap();
        // K(x) = 1/(√(2π)·2) exp(-x²/8) at x = 1
        let expected = (2.0 * std::f64::consts::PI).sqrt().recip() / 2.0 * (-1.0f64 / 8.0).exp();
        assert_close(k.eval_pair(&[1.0], &[0.0]), expected, 1e-15);
    }

    #[test]
    fn gaussian_matches_closed_form_2d() {
        let k = Kernel::gaussian(vec![1.0, 3.0]).unwrap();
        let x = [0.5, -1.5];
        let u = 0.5f64.powi(2) + (1.5f64 / 3.0).powi(2);
        let expected = (2.0 * std::f64::consts::PI).recip() / 3.0 * (-0.5 * u).exp();
        assert_close(k.eval_pair(&x, &[0.0, 0.0]), expected, 1e-15);
    }

    #[test]
    fn gaussian_integrates_to_one_1d() {
        let k = Kernel::gaussian(vec![0.7]).unwrap();
        // Trapezoid over ±10 bandwidths.
        let steps = 20_000;
        let lo = -7.0;
        let hi = 7.0;
        let dx = (hi - lo) / steps as f64;
        let mut integral = 0.0;
        for i in 0..=steps {
            let x = lo + i as f64 * dx;
            let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
            integral += w * k.eval_pair(&[x], &[0.0]) * dx;
        }
        assert_close(integral, 1.0, 1e-6);
    }

    #[test]
    fn epanechnikov_integrates_to_one_2d() {
        let k = Kernel::new(KernelKind::Epanechnikov, vec![1.0, 2.0]).unwrap();
        // 2-d grid integration over the support box.
        let steps = 400;
        let dx = 2.0 / steps as f64; // x support [-1, 1]
        let dy = 4.0 / steps as f64; // y support [-2, 2]
        let mut integral = 0.0;
        for i in 0..steps {
            let x = -1.0 + (i as f64 + 0.5) * dx;
            for j in 0..steps {
                let y = -2.0 + (j as f64 + 0.5) * dy;
                integral += k.eval_pair(&[x, y], &[0.0, 0.0]) * dx * dy;
            }
        }
        assert_close(integral, 1.0, 1e-3);
    }

    #[test]
    fn epanechnikov_zero_outside_support() {
        let k = Kernel::new(KernelKind::Epanechnikov, vec![1.0]).unwrap();
        assert_eq!(k.eval_pair(&[1.0], &[0.0]), 0.0);
        assert_eq!(k.eval_pair(&[5.0], &[0.0]), 0.0);
        assert!(k.eval_pair(&[0.99], &[0.0]) > 0.0);
        assert_eq!(k.support_radius_scaled(), Some(1.0));
    }

    #[test]
    fn monotone_nonincreasing_in_u() {
        for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
            let k = Kernel::new(kind, vec![1.5, 0.5]).unwrap();
            let mut prev = f64::INFINITY;
            for i in 0..100 {
                let u = i as f64 * 0.05;
                let v = k.eval_scaled_sq(u);
                assert!(v <= prev + 1e-18, "{kind:?} not monotone at u={u}");
                prev = v;
            }
        }
    }

    #[test]
    fn max_value_is_at_zero() {
        let k = Kernel::gaussian(vec![0.3, 0.3, 0.3]).unwrap();
        assert_eq!(k.max_value(), k.eval_scaled_sq(0.0));
        assert!(k.eval_scaled_sq(0.1) < k.max_value());
    }

    #[test]
    fn scaled_distance_respects_bandwidth() {
        let k = Kernel::gaussian(vec![1.0, 10.0]).unwrap();
        // Displacement along the wide-bandwidth axis is discounted.
        let u_narrow = k.scaled_sq_dist(&[1.0, 0.0], &[0.0, 0.0]);
        let u_wide = k.scaled_sq_dist(&[0.0, 1.0], &[0.0, 0.0]);
        assert_close(u_narrow, 1.0, 1e-15);
        assert_close(u_wide, 0.01, 1e-15);
        assert_close(k.scaled_sq_norm(&[1.0, 1.0]), 1.01, 1e-15);
    }

    #[test]
    fn radius_fraction_bound_holds() {
        for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
            let k = Kernel::new(kind, vec![1.0]).unwrap();
            for &frac in &[0.5, 0.01, 1e-6] {
                let r = k.radius_for_value_fraction(frac);
                let at_r = k.eval_scaled_sq(r * r);
                // Equality holds at the boundary; allow f64 rounding slack.
                assert!(
                    at_r <= frac * k.max_value() * (1.0 + 1e-12),
                    "{kind:?} frac={frac}: K(r²)={at_r}"
                );
            }
        }
    }

    /// Deterministic pseudo-random block for sum_block tests (no RNG dep).
    fn pseudo_block(rows: usize, d: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut out = Vec::with_capacity(rows * d);
        for _ in 0..rows * d {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out.push((state as f64 / u64::MAX as f64) * 6.0 - 3.0);
        }
        out
    }

    #[test]
    fn sum_block_matches_per_point_eval_pair() {
        for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
            // Cover the unrolled specializations (d ≤ 4), the general
            // path (d = 7, 64), and block boundaries (rows around 32).
            for d in [1usize, 2, 3, 4, 7, 64] {
                let h: Vec<f64> = (0..d).map(|i| 0.5 + 0.25 * i as f64).collect();
                let k = Kernel::new(kind, h).unwrap();
                for rows in [0usize, 1, 31, 32, 33, 100] {
                    let block = pseudo_block(rows, d, (d as u64) << 8 | rows as u64);
                    let x: Vec<f64> = (0..d).map(|i| 0.1 * i as f64).collect();
                    let expected: f64 = block.chunks_exact(d).map(|p| k.eval_pair(&x, p)).sum();
                    let got = k.sum_block(&x, &block);
                    let tol = 1e-12 * k.max_value() * (rows as f64 + 1.0);
                    assert!(
                        (got - expected).abs() <= tol,
                        "{kind:?} d={d} rows={rows}: {got} vs {expected}"
                    );
                }
            }
        }
    }

    #[test]
    fn sum_block_weighted_matches_per_point_eval_pair() {
        for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
            for d in [1usize, 2, 4, 7] {
                let h: Vec<f64> = (0..d).map(|i| 0.5 + 0.25 * i as f64).collect();
                let k = Kernel::new(kind, h).unwrap();
                for rows in [0usize, 1, 31, 32, 33, 100] {
                    let block = pseudo_block(rows, d, (d as u64) << 8 | rows as u64);
                    let weights: Vec<f64> =
                        (0..rows).map(|i| 0.25 + (i % 7) as f64 * 0.5).collect();
                    let x: Vec<f64> = (0..d).map(|i| 0.1 * i as f64).collect();
                    let expected: f64 = block
                        .chunks_exact(d)
                        .zip(&weights)
                        .map(|(p, &w)| w * k.eval_pair(&x, p))
                        .sum();
                    let got = k.sum_block_weighted(&x, &block, &weights);
                    let tol = 1e-12 * k.max_value() * (rows as f64 + 1.0) * 4.0;
                    assert!(
                        (got - expected).abs() <= tol,
                        "{kind:?} d={d} rows={rows}: {got} vs {expected}"
                    );
                }
            }
        }
    }

    #[test]
    fn sum_block_weighted_unit_weights_matches_sum_block() {
        for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
            let k = Kernel::new(kind, vec![0.8, 1.3]).unwrap();
            let block = pseudo_block(70, 2, 99);
            let ones = vec![1.0; 70];
            let a = k.sum_block(&[0.2, -0.4], &block);
            let b = k.sum_block_weighted(&[0.2, -0.4], &block, &ones);
            assert!((a - b).abs() <= 1e-12 * k.max_value() * 71.0, "{a} vs {b}");
        }
    }

    /// Transposes a row-major block into the dimension-major SoA
    /// layout `soa[j·rows + i]`.
    fn transpose(block: &[f64], rows: usize, d: usize) -> Vec<f64> {
        let mut soa = vec![0.0; rows * d];
        for i in 0..rows {
            for j in 0..d {
                soa[j * rows + i] = block[i * d + j];
            }
        }
        soa
    }

    #[test]
    fn sum_block_soa_matches_row_major_oracle() {
        for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
            for d in [1usize, 2, 3, 4, 7, 8, 64] {
                let h: Vec<f64> = (0..d).map(|i| 0.5 + 0.25 * i as f64).collect();
                let k = Kernel::new(kind, h).unwrap();
                for rows in [0usize, 1, 31, 32, 33, 100] {
                    let block = pseudo_block(rows, d, (d as u64) << 8 | rows as u64);
                    let soa = transpose(&block, rows, d);
                    let x: Vec<f64> = (0..d).map(|i| 0.1 * i as f64).collect();
                    let oracle = k.sum_block(&x, &block);
                    let got = k.sum_block_soa(&x, &soa, rows);
                    // Accumulation order differs (per-dimension vs
                    // per-point), so compare to tight FP tolerance.
                    let tol = 1e-12 * k.max_value() * (rows as f64 + 1.0) * d as f64;
                    assert!(
                        (got - oracle).abs() <= tol,
                        "{kind:?} d={d} rows={rows}: {got} vs {oracle}"
                    );
                }
            }
        }
    }

    #[test]
    fn sum_block_soa_weighted_matches_row_major_oracle() {
        for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
            for d in [1usize, 2, 4, 7, 64] {
                let h: Vec<f64> = (0..d).map(|i| 0.5 + 0.25 * i as f64).collect();
                let k = Kernel::new(kind, h).unwrap();
                for rows in [0usize, 1, 31, 33, 100] {
                    let block = pseudo_block(rows, d, (d as u64) << 8 | rows as u64);
                    let soa = transpose(&block, rows, d);
                    let weights: Vec<f64> =
                        (0..rows).map(|i| 0.25 + (i % 7) as f64 * 0.5).collect();
                    let x: Vec<f64> = (0..d).map(|i| 0.1 * i as f64).collect();
                    let oracle = k.sum_block_weighted(&x, &block, &weights);
                    let got = k.sum_block_soa_weighted(&x, &soa, rows, &weights);
                    let tol = 1e-12 * k.max_value() * (rows as f64 + 1.0) * d as f64 * 4.0;
                    assert!(
                        (got - oracle).abs() <= tol,
                        "{kind:?} d={d} rows={rows}: {got} vs {oracle}"
                    );
                }
            }
        }
    }

    #[test]
    fn sum_block_soa_compact_support_and_nan_contracts() {
        let k = Kernel::new(KernelKind::Epanechnikov, vec![1.0, 1.0]).unwrap();
        // All points far outside the unit support: exact zero.
        let soa = vec![50.0; 2 * 40];
        assert_eq!(k.sum_block_soa(&[0.0, 0.0], &soa, 40), 0.0);
        for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
            let k = Kernel::new(kind, vec![1.0]).unwrap();
            let soa = vec![0.5, f64::NAN, 0.25];
            assert!(k.sum_block_soa(&[0.0], &soa, 3).is_nan(), "{kind:?}");
        }
    }

    #[test]
    fn sum_block_compact_support_skips_far_rows() {
        let k = Kernel::new(KernelKind::Epanechnikov, vec![1.0, 1.0]).unwrap();
        // All rows far outside the unit support: exact zero.
        let block = vec![50.0; 2 * 40];
        assert_eq!(k.sum_block(&[0.0, 0.0], &block), 0.0);
    }

    #[test]
    fn sum_block_propagates_nan_like_eval_pair() {
        for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
            let k = Kernel::new(kind, vec![1.0]).unwrap();
            let block = vec![0.5, f64::NAN, 0.25];
            assert!(k.sum_block(&[0.0], &block).is_nan(), "{kind:?}");
        }
    }

    #[test]
    fn rejects_invalid_bandwidths() {
        assert!(Kernel::gaussian(vec![]).is_err());
        assert!(Kernel::gaussian(vec![0.0]).is_err());
        assert!(Kernel::gaussian(vec![-1.0]).is_err());
        assert!(Kernel::gaussian(vec![f64::NAN]).is_err());
        assert!(Kernel::gaussian(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn accessors() {
        let k = Kernel::gaussian(vec![1.0, 2.0]).unwrap();
        assert_eq!(k.dim(), 2);
        assert_eq!(k.bandwidths(), &[1.0, 2.0]);
        assert_eq!(k.kind(), KernelKind::Gaussian);
    }
}
