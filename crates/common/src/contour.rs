//! Contour (level-set) extraction via marching squares, plus SVG export.
//!
//! The paper's region-boundary use case (§2.1, Fig. 2a) visualizes the
//! contour lines separating high and low density regions. This module
//! turns a scalar field sampled on a regular grid into line segments of
//! the `field = level` iso-contour, with linear interpolation along cell
//! edges — the standard marching-squares construction.

use crate::error::{invalid_param, Result};
use std::io::{BufWriter, Write};
use std::path::Path;

/// A line segment of a contour, in field coordinates (grid units; the
/// caller scales into data space).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point `(x, y)`.
    pub a: (f64, f64),
    /// End point `(x, y)`.
    pub b: (f64, f64),
}

/// Extracts the `level` iso-contour of a scalar field given row-major as
/// `values[y * width + x]`.
///
/// Returns the contour as unordered line segments (one or two per grid
/// cell). Saddle cells (ambiguous case) are resolved by the cell-center
/// average, the usual disambiguation.
///
/// # Errors
/// Fails when the grid is smaller than 2×2 or `values` has the wrong
/// length.
pub fn marching_squares(
    values: &[f64],
    width: usize,
    height: usize,
    level: f64,
) -> Result<Vec<Segment>> {
    if width < 2 || height < 2 {
        return Err(invalid_param("grid", "need at least a 2x2 grid"));
    }
    if values.len() != width * height {
        return Err(invalid_param(
            "values",
            format!("expected {} values, got {}", width * height, values.len()),
        ));
    }
    let v = |x: usize, y: usize| values[y * width + x];
    // Interpolated crossing along an edge from (x0,y0,f0) to (x1,y1,f1).
    let cross = |x0: f64, y0: f64, f0: f64, x1: f64, y1: f64, f1: f64| -> (f64, f64) {
        let denom = f1 - f0;
        let t = if denom.abs() < 1e-300 {
            0.5
        } else {
            ((level - f0) / denom).clamp(0.0, 1.0)
        };
        (x0 + t * (x1 - x0), y0 + t * (y1 - y0))
    };

    let mut out = Vec::new();
    for y in 0..height - 1 {
        for x in 0..width - 1 {
            let f00 = v(x, y); // top-left
            let f10 = v(x + 1, y); // top-right
            let f11 = v(x + 1, y + 1); // bottom-right
            let f01 = v(x, y + 1); // bottom-left
            let mut case = 0u8;
            if f00 >= level {
                case |= 1;
            }
            if f10 >= level {
                case |= 2;
            }
            if f11 >= level {
                case |= 4;
            }
            if f01 >= level {
                case |= 8;
            }
            if case == 0 || case == 15 {
                continue;
            }
            let (xf, yf) = (x as f64, y as f64);
            // Edge crossings: top, right, bottom, left.
            let top = || cross(xf, yf, f00, xf + 1.0, yf, f10);
            let right = || cross(xf + 1.0, yf, f10, xf + 1.0, yf + 1.0, f11);
            let bottom = || cross(xf, yf + 1.0, f01, xf + 1.0, yf + 1.0, f11);
            let left = || cross(xf, yf, f00, xf, yf + 1.0, f01);
            let mut seg = |a: (f64, f64), b: (f64, f64)| out.push(Segment { a, b });
            match case {
                1 | 14 => seg(left(), top()),
                2 | 13 => seg(top(), right()),
                3 | 12 => seg(left(), right()),
                4 | 11 => seg(right(), bottom()),
                6 | 9 => seg(top(), bottom()),
                7 | 8 => seg(left(), bottom()),
                5 | 10 => {
                    // Saddle: disambiguate by the center average. When the
                    // center is HIGH the two high corners connect through
                    // the middle, so the contour isolates the two LOW
                    // corners; when the center is LOW the high corners are
                    // isolated instead.
                    let center = 0.25 * (f00 + f10 + f11 + f01);
                    let center_high = center >= level;
                    // Case 5: high corners are TL/BR. Isolating them pairs
                    // (left,top) + (right,bottom); isolating the LOW
                    // corners (TR/BL) pairs (top,right) + (left,bottom).
                    if (case == 5) == center_high {
                        seg(top(), right());
                        seg(left(), bottom());
                    } else {
                        seg(left(), top());
                        seg(right(), bottom());
                    }
                }
                // INVARIANT: cases 0 and 15 are filtered out before the match.
                _ => unreachable!("cases 0/15 skipped above"),
            }
        }
    }
    Ok(out)
}

/// Writes contour segments as a standalone SVG, mapping field coordinates
/// into a `view_w × view_h` canvas.
pub fn write_svg(
    path: impl AsRef<Path>,
    contours: &[(Vec<Segment>, &str)],
    field_w: f64,
    field_h: f64,
    view_w: u32,
    view_h: u32,
) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_svg_to(file, contours, field_w, field_h, view_w, view_h)
}

/// Writer-generic version of [`write_svg`]. Each entry of `contours`
/// pairs a segment list with a stroke color.
pub fn write_svg_to(
    writer: impl Write,
    contours: &[(Vec<Segment>, &str)],
    field_w: f64,
    field_h: f64,
    view_w: u32,
    view_h: u32,
) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{view_w}" height="{view_h}" viewBox="0 0 {view_w} {view_h}">"#
    )?;
    writeln!(
        w,
        r##"<rect width="{view_w}" height="{view_h}" fill="#0e0e18"/>"##
    )?;
    let sx = view_w as f64 / field_w.max(1e-300);
    let sy = view_h as f64 / field_h.max(1e-300);
    for (segments, color) in contours {
        write!(
            w,
            r#"<path stroke="{color}" stroke-width="1.2" fill="none" d=""#
        )?;
        for s in segments.iter() {
            write!(
                w,
                "M{:.2} {:.2}L{:.2} {:.2}",
                s.a.0 * sx,
                s.a.1 * sy,
                s.b.0 * sx,
                s.b.1 * sy
            )?;
        }
        writeln!(w, r#""/>"#)?;
    }
    writeln!(w, "</svg>")?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Radial field: f(x,y) = −distance from grid center.
    fn radial_field(w: usize, h: usize) -> Vec<f64> {
        let (cx, cy) = ((w - 1) as f64 / 2.0, (h - 1) as f64 / 2.0);
        (0..w * h)
            .map(|i| {
                let (x, y) = ((i % w) as f64, (i / w) as f64);
                -((x - cx).powi(2) + (y - cy).powi(2)).sqrt()
            })
            .collect()
    }

    #[test]
    fn circle_contour_has_expected_length() {
        let (w, h) = (41usize, 41usize);
        let field = radial_field(w, h);
        let r = 10.0;
        let segs = marching_squares(&field, w, h, -r).unwrap();
        assert!(!segs.is_empty());
        let total: f64 = segs
            .iter()
            .map(|s| ((s.a.0 - s.b.0).powi(2) + (s.a.1 - s.b.1).powi(2)).sqrt())
            .sum();
        let circumference = 2.0 * std::f64::consts::PI * r;
        assert!(
            (total - circumference).abs() < 0.05 * circumference,
            "contour length {total} vs circle {circumference}"
        );
        // Every segment endpoint lies close to the circle.
        let (cx, cy) = (20.0, 20.0);
        for s in &segs {
            for p in [s.a, s.b] {
                let d = ((p.0 - cx).powi(2) + (p.1 - cy).powi(2)).sqrt();
                assert!((d - r).abs() < 0.8, "endpoint radius {d}");
            }
        }
    }

    #[test]
    fn flat_field_has_no_contour() {
        let field = vec![1.0; 16];
        assert!(marching_squares(&field, 4, 4, 0.5).unwrap().is_empty());
        assert!(marching_squares(&field, 4, 4, 2.0).unwrap().is_empty());
    }

    #[test]
    fn half_plane_contour_is_straight() {
        // f = x: the level-1.5 contour is the vertical line x = 1.5.
        let (w, h) = (4usize, 4usize);
        let field: Vec<f64> = (0..w * h).map(|i| (i % w) as f64).collect();
        let segs = marching_squares(&field, w, h, 1.5).unwrap();
        assert_eq!(segs.len(), h - 1);
        for s in &segs {
            assert!((s.a.0 - 1.5).abs() < 1e-12);
            assert!((s.b.0 - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn saddle_cells_resolve_by_center_average() {
        // Case 5 (high TL/BR), center average 0.5 = level ⇒ center HIGH:
        // the high corners connect, so the contour isolates the LOW
        // corners TR (1,0) and BL (0,1) — each segment hugs one of them.
        let field = vec![1.0, 0.0, 0.0, 1.0];
        let segs = marching_squares(&field, 2, 2, 0.5).unwrap();
        assert_eq!(segs.len(), 2, "saddle emits two segments");
        let hugs = |corner: (f64, f64)| {
            segs.iter().any(|s| {
                let mx = 0.5 * (s.a.0 + s.b.0);
                let my = 0.5 * (s.a.1 + s.b.1);
                (mx - corner.0).abs() + (my - corner.1).abs() < 1.0
            })
        };
        assert!(hugs((1.0, 0.0)), "a segment must isolate the TR low corner");
        assert!(hugs((0.0, 1.0)), "a segment must isolate the BL low corner");

        // Center LOW (level above average): the HIGH corners are isolated.
        let segs = marching_squares(&field, 2, 2, 0.75).unwrap();
        assert_eq!(segs.len(), 2);
        let hugs2 = |corner: (f64, f64)| {
            segs.iter().any(|s| {
                let mx = 0.5 * (s.a.0 + s.b.0);
                let my = 0.5 * (s.a.1 + s.b.1);
                (mx - corner.0).abs() + (my - corner.1).abs() < 1.0
            })
        };
        assert!(
            hugs2((0.0, 0.0)),
            "a segment must isolate the TL high corner"
        );
        assert!(
            hugs2((1.0, 1.0)),
            "a segment must isolate the BR high corner"
        );
    }

    #[test]
    fn rejects_bad_grids() {
        assert!(marching_squares(&[1.0], 1, 1, 0.0).is_err());
        assert!(marching_squares(&[1.0; 5], 2, 2, 0.0).is_err());
    }

    #[test]
    fn svg_output_is_wellformed() {
        let field = radial_field(21, 21);
        let segs = marching_squares(&field, 21, 21, -5.0).unwrap();
        let mut buf = Vec::new();
        write_svg_to(&mut buf, &[(segs, "#fff")], 20.0, 20.0, 400, 400).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        assert!(s.contains("<path stroke=\"#fff\""));
    }
}
