//! Minimal CSV reading and writing for numeric datasets.
//!
//! Supports comma- or whitespace-separated numeric files with an optional
//! header row, which covers the UCI-style dataset formats the paper uses.
//! Missing values (empty fields, `NA`, `nan`) can either be rejected or
//! cause the row to be dropped, mirroring the paper's tmy3 preprocessing
//! ("ignore columns with more than 50% missing values").

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Options for [`read_csv`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter; `None` splits on arbitrary whitespace.
    pub delimiter: Option<char>,
    /// Skip the first non-comment line as a header.
    pub has_header: bool,
    /// Drop rows containing unparseable/missing fields instead of erroring.
    pub skip_bad_rows: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: Some(','),
            has_header: false,
            skip_bad_rows: false,
        }
    }
}

/// Reads a numeric matrix from a CSV/whitespace file on disk.
pub fn read_csv(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<Matrix> {
    let file = std::fs::File::open(path)?;
    read_csv_from(file, opts)
}

/// Reads a numeric matrix from any reader (used by tests with in-memory
/// buffers).
pub fn read_csv_from(reader: impl Read, opts: &CsvOptions) -> Result<Matrix> {
    let reader = BufReader::new(reader);
    let mut m = Matrix::with_cols(0);
    let mut fields: Vec<f64> = Vec::new();
    let mut header_skipped = !opts.has_header;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !header_skipped {
            header_skipped = true;
            continue;
        }
        fields.clear();
        let mut bad = false;
        let parse_field = |tok: &str| -> Option<f64> {
            let tok = tok.trim();
            if tok.is_empty() || tok.eq_ignore_ascii_case("na") || tok.eq_ignore_ascii_case("nan") {
                return None;
            }
            tok.parse::<f64>().ok().filter(|v| v.is_finite())
        };
        match opts.delimiter {
            Some(d) => {
                for tok in trimmed.split(d) {
                    match parse_field(tok) {
                        Some(v) => fields.push(v),
                        None => {
                            bad = true;
                            break;
                        }
                    }
                }
            }
            None => {
                for tok in trimmed.split_whitespace() {
                    match parse_field(tok) {
                        Some(v) => fields.push(v),
                        None => {
                            bad = true;
                            break;
                        }
                    }
                }
            }
        }
        if bad || (m.cols() != 0 && fields.len() != m.cols()) {
            if opts.skip_bad_rows {
                continue;
            }
            return Err(Error::Parse {
                line: lineno + 1,
                message: if bad {
                    "unparseable or missing field".into()
                } else {
                    format!("expected {} fields, found {}", m.cols(), fields.len())
                },
            });
        }
        m.push_row(&fields)?;
    }
    Ok(m)
}

/// Writes a matrix as comma-separated values with full `f64` round-trip
/// precision, optionally preceded by a header row.
pub fn write_csv(path: impl AsRef<Path>, m: &Matrix, header: Option<&[&str]>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv_to(file, m, header)
}

/// Writer-generic version of [`write_csv`].
pub fn write_csv_to(writer: impl Write, m: &Matrix, header: Option<&[&str]>) -> Result<()> {
    let mut w = BufWriter::new(writer);
    if let Some(cols) = header {
        writeln!(w, "{}", cols.join(","))?;
    }
    for row in m.iter_rows() {
        let mut first = true;
        for v in row {
            if !first {
                write!(w, ",")?;
            }
            // {:?} prints the shortest representation that round-trips.
            write!(w, "{v:?}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv() {
        let data = "1.0,2.0\n3.5,-4.5\n";
        let m = read_csv_from(data.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[3.5, -4.5]);
    }

    #[test]
    fn skips_header_and_comments() {
        let data = "# comment\na,b\n1,2\n\n3,4\n";
        let opts = CsvOptions {
            has_header: true,
            ..CsvOptions::default()
        };
        let m = read_csv_from(data.as_bytes(), &opts).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn whitespace_delimited() {
        let data = "1 2 3\n4 5 6\n";
        let opts = CsvOptions {
            delimiter: None,
            ..CsvOptions::default()
        };
        let m = read_csv_from(data.as_bytes(), &opts).unwrap();
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn rejects_bad_rows_by_default() {
        let data = "1,2\n1,oops\n";
        let err = read_csv_from(data.as_bytes(), &CsvOptions::default()).unwrap_err();
        match err {
            Error::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn skips_bad_rows_when_asked() {
        let data = "1,2\n1,NA\n3,4\n1,2,3\n";
        let opts = CsvOptions {
            skip_bad_rows: true,
            ..CsvOptions::default()
        };
        let m = read_csv_from(data.as_bytes(), &opts).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn round_trips_through_write() {
        let m = Matrix::from_rows(&[vec![1.25, -0.000001], vec![1e300, 42.0]]).unwrap();
        let mut buf = Vec::new();
        write_csv_to(&mut buf, &m, Some(&["x", "y"])).unwrap();
        let opts = CsvOptions {
            has_header: true,
            ..CsvOptions::default()
        };
        let back = read_csv_from(buf.as_slice(), &opts).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn empty_input_gives_empty_matrix() {
        let m = read_csv_from("".as_bytes(), &CsvOptions::default()).unwrap();
        assert!(m.is_empty());
    }
}
