//! Summary statistics over datasets: means, standard deviations,
//! percentiles per column, covariance matrices, and classification-quality
//! metrics (precision / recall / F1) used by the accuracy experiments.

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::order;

/// Arithmetic mean of a slice. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (divides by `n`, matching the paper's
/// Scott's-rule usage where σ_i is the component standard deviation).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Per-column means of a dataset.
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let (n, d) = (x.rows(), x.cols());
    let mut sums = vec![0.0; d];
    for row in x.iter_rows() {
        for (s, &v) in sums.iter_mut().zip(row) {
            *s += v;
        }
    }
    if n > 0 {
        for s in &mut sums {
            *s /= n as f64;
        }
    }
    sums
}

/// Per-column population standard deviations.
pub fn column_stds(x: &Matrix) -> Vec<f64> {
    let (n, d) = (x.rows(), x.cols());
    if n == 0 {
        return vec![0.0; d];
    }
    let means = column_means(x);
    let mut acc = vec![0.0; d];
    for row in x.iter_rows() {
        for c in 0..d {
            let diff = row[c] - means[c];
            acc[c] += diff * diff;
        }
    }
    for a in &mut acc {
        *a = (*a / n as f64).sqrt();
    }
    acc
}

/// Per-column weighted means: `μ_c = Σ w_i x_ic / Σ w_i`.
///
/// With unit weights this reduces to [`column_means`]. Weights are
/// assumed positive (the k-d tree builder enforces this for coreset
/// data); a zero total weight returns all-zero means.
///
/// # Panics
/// Panics when `weights.len() != x.rows()` — a programming error, not a
/// data error.
pub fn column_means_weighted(x: &Matrix, weights: &[f64]) -> Vec<f64> {
    assert_eq!(weights.len(), x.rows(), "one weight per row");
    let d = x.cols();
    let mut sums = vec![0.0; d];
    let mut total = 0.0;
    for (row, &w) in x.iter_rows().zip(weights) {
        total += w;
        for (s, &v) in sums.iter_mut().zip(row) {
            *s += w * v;
        }
    }
    if total > 0.0 {
        for s in &mut sums {
            *s /= total;
        }
    }
    sums
}

/// Per-column weighted population standard deviations:
/// `σ_c = sqrt(Σ w_i (x_ic − μ_c)² / Σ w_i)`.
///
/// This is the statistic a weighted coreset carries for Scott's-rule
/// bandwidth selection: with weights summing to the original point count
/// it approximates the full dataset's per-column spread.
///
/// # Panics
/// Panics when `weights.len() != x.rows()`.
pub fn column_stds_weighted(x: &Matrix, weights: &[f64]) -> Vec<f64> {
    assert_eq!(weights.len(), x.rows(), "one weight per row");
    let d = x.cols();
    if x.rows() == 0 {
        return vec![0.0; d];
    }
    let means = column_means_weighted(x, weights);
    let mut acc = vec![0.0; d];
    let mut total = 0.0;
    for (row, &w) in x.iter_rows().zip(weights) {
        total += w;
        for c in 0..d {
            let diff = row[c] - means[c];
            acc[c] += w * diff * diff;
        }
    }
    for a in &mut acc {
        *a = if total > 0.0 {
            (*a / total).sqrt()
        } else {
            0.0
        };
    }
    acc
}

/// `p`-th percentile of each column (p in `[0,1]`), via quickselect.
pub fn column_percentiles(x: &Matrix, p: f64) -> Result<Vec<f64>> {
    if x.rows() == 0 {
        return Err(Error::EmptyInput("percentile dataset"));
    }
    let mut out = Vec::with_capacity(x.cols());
    for c in 0..x.cols() {
        let mut col = x.column(c);
        out.push(order::quantile_in_place(&mut col, p)?);
    }
    Ok(out)
}

/// Sample covariance matrix (divides by `n - 1`), returned row-major `d×d`.
pub fn covariance(x: &Matrix) -> Result<Matrix> {
    let (n, d) = (x.rows(), x.cols());
    if n < 2 {
        return Err(Error::EmptyInput("covariance needs at least two rows"));
    }
    let means = column_means(x);
    let mut cov = vec![0.0; d * d];
    for row in x.iter_rows() {
        for i in 0..d {
            let di = row[i] - means[i];
            for j in i..d {
                cov[i * d + j] += di * (row[j] - means[j]);
            }
        }
    }
    let denom = (n - 1) as f64;
    for i in 0..d {
        for j in i..d {
            let v = cov[i * d + j] / denom;
            cov[i * d + j] = v;
            cov[j * d + i] = v;
        }
    }
    Matrix::from_vec(cov, d, d)
}

/// Confusion-matrix-based binary classification quality.
///
/// The accuracy experiments (paper Fig. 8) measure the F1 score of the
/// "below threshold" (outlier) class of each algorithm against ground
/// truth produced by exact densities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryScore {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl BinaryScore {
    /// Tallies predictions against truth; `true` is the positive class.
    ///
    /// # Panics
    /// Panics when the slices have different lengths.
    pub fn from_labels(truth: &[bool], predicted: &[bool]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "label length mismatch");
        let mut s = BinaryScore {
            tp: 0,
            fp: 0,
            fn_: 0,
            tn: 0,
        };
        for (&t, &p) in truth.iter().zip(predicted) {
            match (t, p) {
                (true, true) => s.tp += 1,
                (false, true) => s.fp += 1,
                (true, false) => s.fn_ += 1,
                (false, false) => s.tn += 1,
            }
        }
        s
    }

    /// Precision `tp / (tp + fp)`; 1.0 when no positives were predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when no positives exist.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        // Precision and recall are ≥ 0, so `<= 0.0` is the both-zero
        // degenerate case without a bit-exact float compare.
        if p + r <= 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(mean(&xs), 5.0, 1e-12);
        assert_close(std_dev(&xs), 2.0, 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn column_stats() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]]).unwrap();
        assert_eq!(column_means(&m), vec![3.0, 10.0]);
        let stds = column_stds(&m);
        assert_close(stds[0], (8.0f64 / 3.0).sqrt(), 1e-12);
        assert_close(stds[1], 0.0, 1e-12);
    }

    #[test]
    fn weighted_column_stats_match_duplication() {
        // Integer weights ≡ duplicating rows: the weighted statistics
        // must agree with the unweighted ones over the expanded dataset.
        let compact =
            Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 0.5], vec![5.0, 4.0]]).unwrap();
        let weights = [2.0, 1.0, 3.0];
        let mut expanded = Matrix::with_cols(2);
        for (row, &w) in compact.iter_rows().zip(&weights) {
            for _ in 0..w as usize {
                expanded.push_row(row).unwrap();
            }
        }
        let wm = column_means_weighted(&compact, &weights);
        let ws = column_stds_weighted(&compact, &weights);
        let em = column_means(&expanded);
        let es = column_stds(&expanded);
        for c in 0..2 {
            assert_close(wm[c], em[c], 1e-12);
            assert_close(ws[c], es[c], 1e-12);
        }
    }

    #[test]
    fn unit_weights_match_unweighted_stats() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]]).unwrap();
        let w = [1.0; 3];
        assert_eq!(column_means_weighted(&m, &w), column_means(&m));
        assert_eq!(column_stds_weighted(&m, &w), column_stds(&m));
    }

    #[test]
    fn column_percentiles_basic() {
        let rows: Vec<Vec<f64>> = (1..=100).map(|i| vec![i as f64]).collect();
        let m = Matrix::from_rows(&rows).unwrap();
        let p10 = column_percentiles(&m, 0.10).unwrap();
        let p90 = column_percentiles(&m, 0.90).unwrap();
        assert_eq!(p10[0], 10.0);
        assert_eq!(p90[0], 90.0);
    }

    #[test]
    fn covariance_identity_data() {
        // Perfectly correlated columns.
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let c = covariance(&m).unwrap();
        assert_close(c.get(0, 0), 1.0, 1e-12);
        assert_close(c.get(0, 1), 2.0, 1e-12);
        assert_close(c.get(1, 0), 2.0, 1e-12);
        assert_close(c.get(1, 1), 4.0, 1e-12);
    }

    #[test]
    fn covariance_needs_two_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(covariance(&m).is_err());
    }

    #[test]
    fn binary_score_counts() {
        let truth = [true, true, false, false, true];
        let pred = [true, false, true, false, true];
        let s = BinaryScore::from_labels(&truth, &pred);
        assert_eq!((s.tp, s.fp, s.fn_, s.tn), (2, 1, 1, 1));
        assert_close(s.precision(), 2.0 / 3.0, 1e-12);
        assert_close(s.recall(), 2.0 / 3.0, 1e-12);
        assert_close(s.f1(), 2.0 / 3.0, 1e-12);
        assert_close(s.accuracy(), 0.6, 1e-12);
    }

    #[test]
    fn binary_score_degenerate() {
        let s = BinaryScore::from_labels(&[false, false], &[false, false]);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.f1(), 1.0);
    }

    #[test]
    fn perfect_f1() {
        let truth = [true, false, true];
        let s = BinaryScore::from_labels(&truth, &truth);
        assert_eq!(s.f1(), 1.0);
    }
}
