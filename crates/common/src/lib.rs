#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tkdc-common
//!
//! Shared substrate for the tKDC reproduction: a dense row-major [`Matrix`]
//! dataset type, summary statistics, order statistics (quickselect-based
//! quantiles), special functions (error function, normal CDF and quantile),
//! a deterministic pseudo-random number generator, and CSV I/O.
//!
//! Everything in this crate is dependency-free and implemented from scratch
//! so that the higher layers (spatial index, kernels, the tKDC algorithm)
//! rest on a fully self-contained numerical base.

pub mod contour;
pub mod csv;
pub mod error;
pub mod fft;
pub mod matrix;
pub mod order;
pub mod ppm;
pub mod rng;
pub mod special;
pub mod stats;

pub use error::{Error, Result};
pub use matrix::Matrix;
pub use rng::Rng;
