//! Error types shared across the workspace.

use std::fmt;

/// Convenience alias used throughout the tkdc crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the tkdc crates.
///
/// The library is deliberately strict about inputs: dimension mismatches,
/// empty datasets, and out-of-range parameters are surfaced as errors rather
/// than silently clamped, so that callers notice misconfiguration early.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a wildcard arm
/// so new failure classes (e.g. wire-protocol violations) can be added
/// without a breaking change.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A matrix/point dimensionality did not match what the operation needs.
    DimensionMismatch {
        /// Expected number of columns / coordinates.
        expected: usize,
        /// Actual number supplied by the caller.
        actual: usize,
    },
    /// An operation that requires data was handed an empty dataset.
    EmptyInput(&'static str),
    /// A parameter was outside its valid domain (e.g. `p` not in `(0,1)`).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// A numeric routine failed to converge or produced a non-finite value.
    Numeric(String),
    /// I/O error while reading or writing a dataset file.
    Io(std::io::Error),
    /// A dataset or model file could not be parsed.
    Parse {
        /// 1-based line number of the malformed record, or 0 when the
        /// input is not line-oriented (e.g. a binary model file).
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A wire-protocol violation: malformed frame, unsupported protocol
    /// version, or a server-side rejection (over capacity, timeout)
    /// reported to a client.
    Protocol {
        /// Description of the violation.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Error::EmptyInput(what) => write!(f, "empty input: {what}"),
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Error::Numeric(msg) => write!(f, "numeric error: {msg}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Parse { line: 0, message } => write!(f, "parse error: {message}"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::Protocol { message } => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Builds an [`Error::InvalidParameter`] with a formatted message.
pub fn invalid_param(name: &'static str, message: impl Into<String>) -> Error {
    Error::InvalidParameter {
        name,
        message: message.into(),
    }
}

/// Builds an [`Error::Parse`] for non-line-oriented (binary) input.
pub fn format_error(message: impl Into<String>) -> Error {
    Error::Parse {
        line: 0,
        message: message.into(),
    }
}

/// Builds an [`Error::Protocol`] with a formatted message.
pub fn protocol_error(message: impl Into<String>) -> Error {
    Error::Protocol {
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = Error::DimensionMismatch {
            expected: 3,
            actual: 5,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3, got 5");
    }

    #[test]
    fn display_empty_input() {
        assert_eq!(
            Error::EmptyInput("training set").to_string(),
            "empty input: training set"
        );
    }

    #[test]
    fn display_invalid_parameter() {
        let e = invalid_param("p", "must lie in (0, 1)");
        assert_eq!(e.to_string(), "invalid parameter `p`: must lie in (0, 1)");
    }

    #[test]
    fn io_error_round_trip() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = inner.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("gone"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }

    #[test]
    fn parse_error_reports_line() {
        let e = Error::Parse {
            line: 7,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn format_error_omits_line() {
        let e = format_error("bad magic");
        assert_eq!(e.to_string(), "parse error: bad magic");
        assert!(matches!(e, Error::Parse { line: 0, .. }));
    }

    #[test]
    fn protocol_error_displays() {
        let e = protocol_error("server over capacity");
        assert_eq!(e.to_string(), "protocol error: server over capacity");
        assert!(matches!(e, Error::Protocol { .. }));
    }
}
