//! Fast Fourier transform and FFT-based convolution.
//!
//! The R `ks` package family of binned KDE estimators (Silverman 1982,
//! Wand 1994) smooths bin weights with an FFT convolution; this module
//! supplies that substrate: an iterative radix-2 complex FFT plus real
//! linear convolution helpers. No external dependencies.

use crate::error::{invalid_param, Result};

/// Minimal complex number for FFT work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs a complex number.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, other: Self) -> Self {
        Self {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, other: Self) -> Self {
        Self {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, other: Self) -> Self {
        Self {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// Smallest power of two that is at least `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `inverse` computes the unnormalized inverse transform; divide by the
/// length afterwards to invert exactly (done by [`ifft_in_place`]).
///
/// # Errors
/// Fails when the length is not a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) -> Result<()> {
    let n = data.len();
    if n == 0 {
        return Ok(());
    }
    if !n.is_power_of_two() {
        return Err(invalid_param(
            "data",
            format!("FFT length must be a power of two, got {n}"),
        ));
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// In-place inverse FFT including the `1/n` normalization.
pub fn ifft_in_place(data: &mut [Complex]) -> Result<()> {
    fft_in_place(data, true)?;
    let inv_n = 1.0 / data.len() as f64;
    for c in data.iter_mut() {
        c.re *= inv_n;
        c.im *= inv_n;
    }
    Ok(())
}

/// Full linear convolution of two real sequences via FFT: output length
/// `a.len() + b.len() - 1`.
///
/// # Errors
/// Propagates FFT length errors (cannot occur: the padded size is a
/// power of two) — the signature stays fallible for API symmetry.
pub fn convolve_real(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    if a.is_empty() || b.is_empty() {
        return Ok(Vec::new());
    }
    let out_len = a.len() + b.len() - 1;
    let m = next_pow2(out_len);
    let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fa.resize(m, Complex::default());
    let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fb.resize(m, Complex::default());
    fft_in_place(&mut fa, false)?;
    fft_in_place(&mut fb, false)?;
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = *x * *y;
    }
    ifft_in_place(&mut fa)?;
    Ok(fa[..out_len].iter().map(|c| c.re).collect())
}

/// Applies a 1-d FFT along `axis` of a row-major n-dimensional complex
/// grid with the given `shape` (every `shape[axis]` must be a power of
/// two for the transformed axis).
///
/// # Errors
/// Fails when `data.len() != shape.iter().product()` or the axis length
/// is not a power of two.
pub fn fft_axis(data: &mut [Complex], shape: &[usize], axis: usize, inverse: bool) -> Result<()> {
    let total: usize = shape.iter().product();
    if data.len() != total {
        return Err(invalid_param(
            "data",
            format!("buffer {} != shape product {total}", data.len()),
        ));
    }
    assert!(axis < shape.len(), "axis out of range");
    let axis_len = shape[axis];
    // Stride of the axis in the row-major layout.
    let stride: usize = shape[axis + 1..].iter().product();
    let outer: usize = shape[..axis].iter().product();
    let inner = stride;
    let mut line = vec![Complex::default(); axis_len];
    for o in 0..outer {
        for i in 0..inner {
            let base = o * axis_len * stride + i;
            for k in 0..axis_len {
                line[k] = data[base + k * stride];
            }
            fft_in_place(&mut line, inverse)?;
            if inverse {
                let inv = 1.0 / axis_len as f64;
                for c in line.iter_mut() {
                    c.re *= inv;
                    c.im *= inv;
                }
            }
            for k in 0..axis_len {
                data[base + k * stride] = line[k];
            }
        }
    }
    Ok(())
}

/// N-dimensional circular convolution of two real row-major grids of the
/// same power-of-two `shape`, returning the real part of the result.
///
/// Callers wanting *linear* convolution must zero-pad each axis by the
/// kernel reach before calling (see the binned KDE implementation).
pub fn convolve_nd_circular(a: &[f64], b: &[f64], shape: &[usize]) -> Result<Vec<f64>> {
    let total: usize = shape.iter().product();
    if a.len() != total || b.len() != total {
        return Err(invalid_param(
            "a/b",
            format!("buffers must match shape product {total}"),
        ));
    }
    let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::new(x, 0.0)).collect();
    for axis in 0..shape.len() {
        fft_axis(&mut fa, shape, axis, false)?;
        fft_axis(&mut fb, shape, axis, false)?;
    }
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = *x * *y;
    }
    for axis in 0..shape.len() {
        fft_axis(&mut fa, shape, axis, true)?;
    }
    Ok(fa.iter().map(|c| c.re).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut data, false).unwrap();
        for c in &data {
            assert_close(c.re, 1.0, 1e-12);
            assert_close(c.im, 0.0, 1e-12);
        }
    }

    #[test]
    fn fft_round_trip() {
        let mut rng = Rng::seed_from(1);
        let orig: Vec<Complex> = (0..64)
            .map(|_| Complex::new(rng.standard_normal(), rng.standard_normal()))
            .collect();
        let mut data = orig.clone();
        fft_in_place(&mut data, false).unwrap();
        ifft_in_place(&mut data).unwrap();
        for (a, b) in data.iter().zip(&orig) {
            assert_close(a.re, b.re, 1e-10);
            assert_close(a.im, b.im, 1e-10);
        }
    }

    #[test]
    fn fft_matches_dft_definition() {
        let mut rng = Rng::seed_from(2);
        let x: Vec<Complex> = (0..16)
            .map(|_| Complex::new(rng.standard_normal(), 0.0))
            .collect();
        let mut fast = x.clone();
        fft_in_place(&mut fast, false).unwrap();
        // Direct O(n²) DFT.
        for k in 0..16 {
            let mut acc = Complex::default();
            for (n, &xn) in x.iter().enumerate() {
                let w = Complex::from_angle(-2.0 * std::f64::consts::PI * (k * n) as f64 / 16.0);
                acc = acc + xn * w;
            }
            assert_close(fast[k].re, acc.re, 1e-10);
            assert_close(fast[k].im, acc.im, 1e-10);
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut data = vec![Complex::default(); 6];
        assert!(fft_in_place(&mut data, false).is_err());
    }

    #[test]
    fn convolution_matches_direct() {
        let mut rng = Rng::seed_from(3);
        let a: Vec<f64> = (0..13).map(|_| rng.standard_normal()).collect();
        let b: Vec<f64> = (0..7).map(|_| rng.standard_normal()).collect();
        let fast = convolve_real(&a, &b).unwrap();
        assert_eq!(fast.len(), 19);
        for k in 0..fast.len() {
            let mut acc = 0.0;
            for i in 0..a.len() {
                if k >= i && k - i < b.len() {
                    acc += a[i] * b[k - i];
                }
            }
            assert_close(fast[k], acc, 1e-10);
        }
    }

    #[test]
    fn convolution_identity() {
        let a = [1.0, 2.0, 3.0];
        let delta = [1.0];
        assert_eq!(convolve_real(&a, &delta).unwrap().len(), 3);
        let out = convolve_real(&a, &delta).unwrap();
        for (x, y) in out.iter().zip(&a) {
            assert_close(*x, *y, 1e-12);
        }
        assert!(convolve_real(&[], &a).unwrap().is_empty());
    }

    #[test]
    fn nd_circular_convolution_2d_matches_direct() {
        let shape = [4usize, 8];
        let mut rng = Rng::seed_from(4);
        let a: Vec<f64> = (0..32).map(|_| rng.standard_normal()).collect();
        let b: Vec<f64> = (0..32).map(|_| rng.standard_normal()).collect();
        let fast = convolve_nd_circular(&a, &b, &shape).unwrap();
        // Direct circular convolution.
        for y in 0..4 {
            for x in 0..8 {
                let mut acc = 0.0;
                for j in 0..4 {
                    for i in 0..8 {
                        let yy = (y + 4 - j) % 4;
                        let xx = (x + 8 - i) % 8;
                        acc += a[j * 8 + i] * b[yy * 8 + xx];
                    }
                }
                assert_close(fast[y * 8 + x], acc, 1e-9);
            }
        }
    }

    #[test]
    fn fft_axis_equivalent_to_flat_fft_in_1d() {
        let mut rng = Rng::seed_from(5);
        let orig: Vec<Complex> = (0..16)
            .map(|_| Complex::new(rng.standard_normal(), 0.0))
            .collect();
        let mut flat = orig.clone();
        fft_in_place(&mut flat, false).unwrap();
        let mut axis = orig.clone();
        fft_axis(&mut axis, &[16], 0, false).unwrap();
        for (a, b) in axis.iter().zip(&flat) {
            assert_close(a.re, b.re, 1e-12);
            assert_close(a.im, b.im, 1e-12);
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut data = vec![Complex::default(); 8];
        assert!(fft_axis(&mut data, &[4, 4], 0, false).is_err());
        assert!(convolve_nd_circular(&[0.0; 8], &[0.0; 16], &[16]).is_err());
    }
}
