//! Order statistics: quickselect, sample quantiles, and the binomial /
//! normal-approximation confidence intervals for quantiles used by the
//! threshold bootstrap (Eq. 10 and Eq. 11 of the paper).

use crate::error::{invalid_param, Result};
use crate::special::normal_quantile;

/// Returns the `k`-th smallest element (0-based) of `xs` using in-place
/// quickselect with a median-of-three pivot. Expected `O(n)`.
///
/// # Panics
/// Panics when `xs` is empty or `k >= xs.len()`.
pub fn quickselect(xs: &mut [f64], k: usize) -> f64 {
    assert!(!xs.is_empty(), "quickselect on empty slice");
    assert!(k < xs.len(), "k={k} out of range for length {}", xs.len());
    let mut lo = 0usize;
    let mut hi = xs.len() - 1;
    loop {
        if lo == hi {
            return xs[lo];
        }
        let pivot = median_of_three(xs, lo, hi);
        let (lt, gt) = three_way_partition(xs, lo, hi, pivot);
        if k < lt {
            hi = lt - 1;
        } else if k > gt {
            lo = gt + 1;
        } else {
            return pivot; // k lies in the equal-to-pivot band
        }
    }
}

fn median_of_three(xs: &[f64], lo: usize, hi: usize) -> f64 {
    let mid = lo + (hi - lo) / 2;
    let (a, b, c) = (xs[lo], xs[mid], xs[hi]);
    // Branchy but tiny: returns the median of a,b,c.
    if (a <= b && b <= c) || (c <= b && b <= a) {
        b
    } else if (b <= a && a <= c) || (c <= a && a <= b) {
        a
    } else {
        c
    }
}

/// Dutch-national-flag partition of `xs[lo..=hi]` around `pivot`.
/// Returns `(lt, gt)` where `xs[lo..lt] < pivot`, `xs[lt..=gt] == pivot`,
/// `xs[gt+1..=hi] > pivot`.
fn three_way_partition(xs: &mut [f64], lo: usize, hi: usize, pivot: f64) -> (usize, usize) {
    let mut lt = lo;
    let mut gt = hi;
    let mut i = lo;
    while i <= gt {
        if xs[i] < pivot {
            xs.swap(lt, i);
            lt += 1;
            i += 1;
        } else if xs[i] > pivot {
            xs.swap(i, gt);
            if gt == 0 {
                break;
            }
            gt -= 1;
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

/// The paper's quantile function `q_p(S)`: the `⌈np⌉`-th smallest element,
/// clamped to the valid order-statistic range (1-based rank `max(1, ⌈np⌉)`).
///
/// Consumes the slice order (partially sorts in place).
pub fn quantile_in_place(xs: &mut [f64], p: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(crate::error::Error::EmptyInput("quantile sample"));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(invalid_param("p", format!("must be in [0,1], got {p}")));
    }
    let n = xs.len();
    // 1-based rank ⌈np⌉ clamped into [1, n]; convert to 0-based.
    let rank = ((n as f64 * p).ceil() as usize).clamp(1, n); // CAST: ceil of n*p is >= 0; the clamp bounds it
    Ok(quickselect(xs, rank - 1))
}

/// Like [`quantile_in_place`] but on a borrowed slice (clones internally).
pub fn quantile(xs: &[f64], p: f64) -> Result<f64> {
    let mut buf = xs.to_vec();
    quantile_in_place(&mut buf, p)
}

/// 0-based order-statistic ranks `(l, u)` bracketing the `p`-quantile of an
/// `n`-point population with confidence `1 - δ`, computed on a sample of
/// size `s` via the normal approximation to the binomial (Eq. 11):
///
/// `l, u = s·p ∓ z · sqrt(s·p·(1−p))`.
///
/// The interval is two-sided, so `z = z_{1−δ/2}`; the paper's worked
/// example (s=20000, δ=0.01, p=0.01 ⇒ ranks 164 and 236 with z=2.576)
/// confirms this is the z-score in use. Ranks are widened outward
/// (floor/ceil) and clamped to `[0, s-1]`. Returns an error when `s == 0`.
pub fn quantile_ci_ranks(s: usize, p: f64, delta: f64) -> Result<(usize, usize)> {
    if s == 0 {
        return Err(crate::error::Error::EmptyInput("quantile CI sample"));
    }
    if !(0.0 < p && p < 1.0) {
        return Err(invalid_param("p", format!("must be in (0,1), got {p}")));
    }
    if !(0.0 < delta && delta < 1.0) {
        return Err(invalid_param(
            "delta",
            format!("must be in (0,1), got {delta}"),
        ));
    }
    let sf = s as f64;
    let z = normal_quantile(1.0 - delta / 2.0);
    let half_width = z * (sf * p * (1.0 - p)).sqrt();
    let center = sf * p;
    let mut l = (center - half_width).floor().max(0.0) as usize; // CAST: floored and clamped non-negative
    let u_raw = (center + half_width).ceil() as usize; // CAST: non-negative; clamped to s-1 below
    let u = u_raw.min(s - 1);
    // When one side of the interval is clipped by the sample boundary,
    // compensate by widening the other side so the binomial mass between
    // the ranks stays at least 1−δ (otherwise coverage silently degrades
    // for quantiles near 0 or 1).
    if u_raw > s - 1 {
        l = l.saturating_sub(u_raw - (s - 1));
    }
    let l_raw = center - half_width;
    if l_raw < 0.0 {
        let overflow = (-l_raw).ceil() as usize; // CAST: -l_raw is positive and at most half_width
                                                 // u already clamped to s-1 above; widen as far as possible.
        return Ok((0, (u + overflow).min(s - 1)));
    }
    let l = l.min(s - 1);
    Ok((l, u))
}

/// Exact binomial coverage probability `Pr(d_s^(l) ≤ d^(np) ≤ d_s^(u))`
/// from Eq. 10: `Σ_{i=l}^{u} C(s,i) p^i (1-p)^{s-i}`.
///
/// Evaluated in log-space with incremental term ratios for numerical
/// stability at large `s`. Ranks here are 1-based order-statistic indices,
/// matching the paper's statement; pass `l >= 1`.
pub fn binomial_coverage(s: usize, p: f64, l: usize, u: usize) -> f64 {
    assert!(l >= 1 && u >= l && u <= s, "invalid rank range [{l},{u}]");
    // Term for i = l via log factorials, then multiply across.
    let log_term = |i: usize| -> f64 {
        ln_choose(s, i) + (i as f64) * p.ln() + ((s - i) as f64) * (1.0 - p).ln()
    };
    let mut sum = 0.0;
    let mut t = log_term(l).exp();
    for i in l..=u {
        sum += t;
        if i < u {
            // ratio term(i+1)/term(i) = (s-i)/(i+1) * p/(1-p)
            t *= (s - i) as f64 / (i as f64 + 1.0) * (p / (1.0 - p));
        }
    }
    sum.min(1.0)
}

/// `ln C(n, k)` via the log-gamma function (Stirling series).
pub fn ln_choose(n: usize, k: usize) -> f64 {
    assert!(k <= n);
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Log-gamma via the Lanczos approximation (g = 7, n = 9), accurate to
/// ~1e-13 over the positive reals.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn quickselect_agrees_with_sort() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        for k in 0..xs.len() {
            let mut buf = xs.to_vec();
            assert_eq!(quickselect(&mut buf, k), sorted[k], "k={k}");
        }
    }

    #[test]
    fn quickselect_single_element() {
        let mut xs = [42.0];
        assert_eq!(quickselect(&mut xs, 0), 42.0);
    }

    #[test]
    fn quickselect_all_equal() {
        let mut xs = [7.0; 50];
        assert_eq!(quickselect(&mut xs, 25), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quickselect_rejects_bad_k() {
        let mut xs = [1.0, 2.0];
        quickselect(&mut xs, 2);
    }

    #[test]
    fn quantile_matches_order_statistic() {
        // q_p is the ⌈np⌉-th smallest (1-based).
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.01).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 50.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 100.0);
        // p=0 clamps to the minimum.
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
    }

    #[test]
    fn quantile_fractional_rank_rounds_up() {
        let xs = vec![10.0, 20.0, 30.0];
        // n*p = 3*0.4 = 1.2 → rank 2 → 20.0
        assert_eq!(quantile(&xs, 0.4).unwrap(), 20.0);
    }

    #[test]
    fn quantile_rejects_bad_inputs() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
    }

    #[test]
    fn ci_ranks_match_paper_example() {
        // Paper §3.5: s=20000, δ=0.01, p=0.01 gives the 164th and 236th
        // order statistics (1-based). Our ranks are 0-based and use
        // floor/ceil, so allow ±2 slack around the quoted values.
        let (l, u) = quantile_ci_ranks(20_000, 0.01, 0.01).unwrap();
        assert!((162..=166).contains(&(l + 1)), "l={l}");
        assert!((234..=238).contains(&(u + 1)), "u={u}");
    }

    #[test]
    fn ci_ranks_clamped() {
        let (l, u) = quantile_ci_ranks(10, 0.01, 0.01).unwrap();
        assert!(u < 10);
        let _ = l;
        assert!(quantile_ci_ranks(0, 0.5, 0.1).is_err());
    }

    #[test]
    fn ci_coverage_exceeds_confidence() {
        // The binomial mass between the CI ranks must be at least 1-δ.
        for &(s, p, delta) in &[(20_000usize, 0.01, 0.01), (5_000usize, 0.05, 0.05)] {
            let (l, u) = quantile_ci_ranks(s, p, delta).unwrap();
            let cover = binomial_coverage(s, p, l + 1, u + 1);
            assert!(
                cover >= 1.0 - delta - 0.01,
                "s={s} p={p} δ={delta}: coverage {cover}"
            );
        }
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert_close(ln_gamma(1.0), 0.0, 1e-10);
        assert_close(ln_gamma(2.0), 0.0, 1e-10);
        assert_close(ln_gamma(5.0), 24f64.ln(), 1e-10);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert_close(ln_choose(5, 2), 10f64.ln(), 1e-10);
        assert_close(ln_choose(10, 0), 0.0, 1e-10);
        assert_close(ln_choose(52, 5), 2_598_960f64.ln(), 1e-8);
    }

    #[test]
    fn binomial_coverage_full_range_is_near_one() {
        let c = binomial_coverage(100, 0.3, 1, 100);
        // Missing only the i=0 term: 0.7^100 ≈ 3e-16.
        assert!(c > 0.999_999);
    }
}
