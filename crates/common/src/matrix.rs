//! A dense row-major matrix used as the dataset container throughout tkdc.
//!
//! Points are rows; coordinates are columns. Storage is a single flat
//! `Vec<f64>` so that row access is a contiguous slice — the kernel
//! evaluation hot loop iterates rows without pointer chasing.

use crate::error::{invalid_param, Error, Result};

/// Dense row-major matrix of `f64` values.
///
/// Invariant: `data.len() == rows * cols`.
///
/// ```
/// use tkdc_common::Matrix;
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 2);
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] when `data.len() != rows * cols`
    /// or when `cols == 0` while `rows > 0`.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(invalid_param(
                "data",
                format!(
                    "buffer length {} does not equal rows*cols = {}",
                    data.len(),
                    rows * cols
                ),
            ));
        }
        if rows > 0 && cols == 0 {
            return Err(invalid_param("cols", "must be positive when rows > 0"));
        }
        Ok(Self { data, rows, cols })
    }

    /// Creates an empty matrix with a fixed column count.
    pub fn with_cols(cols: usize) -> Self {
        Self {
            data: Vec::new(),
            rows: 0,
            cols,
        }
    }

    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Builds a matrix from row slices, validating that all rows share one
    /// dimensionality.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::with_cols(0));
        }
        let cols = rows[0].as_ref().len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            let r = r.as_ref();
            if r.len() != cols {
                return Err(Error::DimensionMismatch {
                    expected: cols,
                    actual: r.len(),
                })
                .inspect_err(|_e| {
                    // annotate which row via a numeric error wrapper is noisy;
                    // the mismatch itself identifies the problem.
                    let _ = i;
                });
            }
            data.extend_from_slice(r);
        }
        Self::from_vec(data, rows.len(), cols)
    }

    /// Number of rows (points).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (dimensions).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow of row `i` as a contiguous slice.
    ///
    /// # Panics
    /// Panics when `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Value at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: f64) {
        self.data[row * self.cols + col] = v;
    }

    /// The flat row-major backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Appends a row, validating dimensionality.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        if row.len() != self.cols {
            return Err(Error::DimensionMismatch {
                expected: self.cols,
                actual: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Extracts one column as an owned vector.
    pub fn column(&self, col: usize) -> Vec<f64> {
        assert!(col < self.cols, "column {col} out of range ({})", self.cols);
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            out.push(self.get(r, col));
        }
        out
    }

    /// New matrix keeping only the given columns, in the given order.
    ///
    /// This mirrors the paper's experiments that work on column subsets
    /// (e.g. shuttle columns 4 and 6, or dimension-prefix sweeps).
    pub fn select_columns(&self, cols: &[usize]) -> Result<Self> {
        for &c in cols {
            if c >= self.cols {
                return Err(invalid_param(
                    "cols",
                    format!("column {c} out of range ({})", self.cols),
                ));
            }
        }
        let mut data = Vec::with_capacity(self.rows * cols.len());
        for r in 0..self.rows {
            let row = self.row(r);
            for &c in cols {
                data.push(row[c]);
            }
        }
        Self::from_vec(data, self.rows, cols.len())
    }

    /// New matrix containing the first `d` columns.
    pub fn prefix_columns(&self, d: usize) -> Result<Self> {
        let cols: Vec<usize> = (0..d).collect();
        self.select_columns(&cols)
    }

    /// New matrix containing the rows at `indices` (duplicates allowed).
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(invalid_param(
                    "indices",
                    format!("row {i} out of range ({})", self.rows),
                ));
            }
            data.extend_from_slice(self.row(i));
        }
        Self::from_vec(data, indices.len(), self.cols)
    }

    /// New matrix containing the first `n` rows.
    pub fn head(&self, n: usize) -> Self {
        let n = n.min(self.rows);
        Self {
            data: self.data[..n * self.cols].to_vec(),
            rows: n,
            cols: self.cols,
        }
    }

    /// Uniform random sample of `n` rows without replacement (Fisher–Yates
    /// on an index array). When `n >= rows`, returns a shuffled copy.
    pub fn sample_rows(&self, n: usize, rng: &mut crate::rng::Rng) -> Self {
        let n = n.min(self.rows);
        let mut idx: Vec<usize> = (0..self.rows).collect();
        // Partial Fisher–Yates: only the first n positions need shuffling.
        for i in 0..n {
            let j = i + (rng.next_u64() as usize) % (self.rows - i); // CAST: truncation before the modulo keeps j in range
            idx.swap(i, j);
        }
        // INVARIANT: idx is a permutation of 0..rows and n <= rows.
        self.select_rows(&idx[..n]).expect("indices are in range")
    }

    /// Per-column minimum and maximum over all rows.
    ///
    /// Returns `(mins, maxs)`; both are empty when the matrix has no rows.
    pub fn column_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        if self.rows == 0 {
            return (Vec::new(), Vec::new());
        }
        let mut mins = self.row(0).to_vec();
        let mut maxs = mins.clone();
        for r in 1..self.rows {
            let row = self.row(r);
            for c in 0..self.cols {
                if row[c] < mins[c] {
                    mins[c] = row[c];
                }
                if row[c] > maxs[c] {
                    maxs[c] = row[c];
                }
            }
        }
        (mins, maxs)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(vec![1.0; 6], 2, 3).is_ok());
        assert!(Matrix::from_vec(vec![1.0; 5], 2, 3).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, Error::DimensionMismatch { .. }));
    }

    #[test]
    fn row_access_and_mutation() {
        let mut m = Matrix::zeros(3, 2);
        m.row_mut(1).copy_from_slice(&[5.0, 6.0]);
        assert_eq!(m.row(1), &[5.0, 6.0]);
        assert_eq!(m.get(1, 1), 6.0);
        m.set(2, 0, -1.0);
        assert_eq!(m.row(2), &[-1.0, 0.0]);
    }

    #[test]
    fn push_row_infers_cols() {
        let mut m = Matrix::with_cols(0);
        m.push_row(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.cols(), 3);
        assert!(m.push_row(&[1.0]).is_err());
        assert_eq!(m.rows(), 1);
    }

    #[test]
    fn column_extraction() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.column(0), vec![1.0, 3.0, 5.0]);
        assert_eq!(m.column(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn select_columns_reorders() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let s = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[6.0, 4.0]);
        assert!(m.select_columns(&[3]).is_err());
    }

    #[test]
    fn prefix_columns_takes_leading_dims() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        let p = m.prefix_columns(2).unwrap();
        assert_eq!(p.cols(), 2);
        assert_eq!(p.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn select_rows_allows_duplicates() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let s = m.select_rows(&[1, 1, 0]).unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), &[2.0]);
        assert_eq!(s.row(2), &[1.0]);
        assert!(m.select_rows(&[2]).is_err());
    }

    #[test]
    fn head_clamps() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert_eq!(m.head(1).rows(), 1);
        assert_eq!(m.head(10).rows(), 2);
    }

    #[test]
    fn sample_rows_without_replacement() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let m = Matrix::from_rows(&rows).unwrap();
        let mut rng = Rng::seed_from(42);
        let s = m.sample_rows(50, &mut rng);
        assert_eq!(s.rows(), 50);
        let mut seen: Vec<i64> = s.iter_rows().map(|r| r[0] as i64).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 50, "sample must not contain duplicates");
    }

    #[test]
    fn sample_rows_oversized_returns_all() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let mut rng = Rng::seed_from(7);
        let s = m.sample_rows(10, &mut rng);
        assert_eq!(s.rows(), 3);
    }

    #[test]
    fn column_bounds_cover_all_rows() {
        let m = Matrix::from_rows(&[vec![1.0, -5.0], vec![-2.0, 7.0], vec![0.5, 0.0]]).unwrap();
        let (mins, maxs) = m.column_bounds();
        assert_eq!(mins, vec![-2.0, -5.0]);
        assert_eq!(maxs, vec![1.0, 7.0]);
    }

    #[test]
    fn column_bounds_empty() {
        let m = Matrix::with_cols(3);
        let (mins, maxs) = m.column_bounds();
        assert!(mins.is_empty() && maxs.is_empty());
    }

    #[test]
    fn iter_rows_yields_all() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[3.0, 4.0]);
    }
}
