//! Special functions: error function, standard normal CDF, and the
//! standard normal quantile (inverse CDF).
//!
//! The quantile `z_p` feeds the order-statistic confidence intervals of the
//! threshold bootstrap (Eq. 11 of the paper), so its accuracy directly
//! determines the validity of the probabilistic bounds on `t(p)`.

/// Error function `erf(x)`, accurate to ~1e-14 relative error.
///
/// Computed through the regularized lower incomplete gamma function:
/// `erf(x) = sign(x) · P(1/2, x²)`, using the standard series expansion
/// for small arguments and the Lentz continued fraction for large ones.
#[allow(clippy::float_cmp)] // exact ±0 fast path below is intentional
pub fn erf(x: f64) -> f64 {
    // erf(±0) = ±0 exactly; bit-exact compare intended.
    // tkdc-lint: allow(float-eq)
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    sign * gamma_p(0.5, x * x)
}

/// Complementary error function `erfc(x) = 1 - erf(x)`, computed directly
/// from the upper incomplete gamma fraction for positive arguments so that
/// deep tails keep relative precision instead of cancelling to zero.
pub fn erfc(x: f64) -> f64 {
    if x <= 0.0 {
        return 1.0 + erf(-x); // erf is odd, so this equals 1 - erf(x)
    }
    gamma_q(0.5, x * x)
}

/// Regularized lower incomplete gamma `P(a, x)`.
#[allow(clippy::float_cmp)] // exact-zero fast path below is intentional
fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    // P(a, 0) = 0 exactly; bit-exact compare intended.
    // tkdc-lint: allow(float-eq)
    if x == 0.0 {
        0.0
    } else if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
#[allow(clippy::float_cmp)] // exact-zero fast path below is intentional
fn gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    // Q(a, 0) = 1 exactly; bit-exact compare intended.
    // tkdc-lint: allow(float-eq)
    if x == 0.0 {
        1.0
    } else if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of `P(a, x)` — converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * f64::EPSILON {
            break;
        }
    }
    sum * (-x + a * x.ln() - crate::order::ln_gamma(a)).exp()
}

/// Modified Lentz continued fraction for `Q(a, x)` — converges fast for
/// `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < f64::EPSILON {
            break;
        }
    }
    (-x + a * x.ln() - crate::order::ln_gamma(a)).exp() * h
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile function `Φ⁻¹(p)` (a.k.a. probit, `z_p`).
///
/// Implements Acklam's rational approximation (relative error below
/// `1.15e-9` over the full open unit interval) followed by one Halley
/// refinement step, which brings the result to near machine precision.
///
/// # Panics
/// Panics when `p` is outside the open interval `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step against the exact CDF sharpens the tail estimates.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Standard normal probability density function `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from standard tables.
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
            assert!(erf(x).abs() <= 1.0);
        }
    }

    #[test]
    fn erfc_complements() {
        for i in -30..30 {
            let x = i as f64 * 0.2;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for i in 0..40 {
            let x = i as f64 * 0.25;
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-10);
        }
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_known_values() {
        // z_{0.975} = 1.959964, z_{0.99} = 2.326348, z_{0.995} = 2.575829
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.99) - 2.326348).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-4);
        assert!((normal_quantile(0.5)).abs() < 1e-8);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for i in 1..99 {
            let p = i as f64 / 100.0;
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-7,
                "p={p} x={x} cdf={}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn quantile_tails() {
        // Deep tails should still round-trip reasonably.
        for &p in &[1e-6, 1e-4, 1.0 - 1e-4, 1.0 - 1e-6] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() / p.min(1.0 - p) < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "normal_quantile requires p in (0,1)")]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!((normal_pdf(1.5) - normal_pdf(-1.5)).abs() < 1e-15);
    }
}
