//! Minimal PPM (portable pixmap) image output.
//!
//! The paper's figures are density maps and contour plots; this writer
//! lets the examples emit real raster images (viewable everywhere,
//! convertible with any image tool) without an image-crate dependency.

use crate::error::{invalid_param, Result};
use std::io::{BufWriter, Write};
use std::path::Path;

/// An RGB image buffer.
#[derive(Debug, Clone)]
pub struct Image {
    width: usize,
    height: usize,
    /// Row-major RGB triples.
    pixels: Vec<[u8; 3]>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Errors
    /// Fails on zero dimensions.
    pub fn new(width: usize, height: usize) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(invalid_param("size", "image dimensions must be positive"));
        }
        Ok(Self {
            width,
            height,
            pixels: vec![[0, 0, 0]; width * height],
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sets one pixel; coordinates outside the image are ignored (callers
    /// plot data-space points without pre-clipping).
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = rgb;
        }
    }

    /// Reads one pixel.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Writes binary PPM (P6).
    pub fn write_ppm(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_ppm_to(file)
    }

    /// Writer-generic version of [`Self::write_ppm`].
    pub fn write_ppm_to(&self, writer: impl Write) -> Result<()> {
        let mut w = BufWriter::new(writer);
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        for px in &self.pixels {
            w.write_all(px)?;
        }
        w.flush()?;
        Ok(())
    }
}

/// Maps a unit-interval value through a blue→cyan→yellow→red heat ramp
/// (the look of the paper's density figures). Values outside `[0,1]`
/// clamp.
pub fn heat_color(v: f64) -> [u8; 3] {
    let v = v.clamp(0.0, 1.0);
    // Four-stop linear ramp.
    let stops: [(f64, [f64; 3]); 4] = [
        (0.0, [15.0, 35.0, 120.0]),   // deep blue
        (0.35, [30.0, 180.0, 190.0]), // cyan
        (0.7, [245.0, 210.0, 50.0]),  // yellow
        (1.0, [210.0, 35.0, 30.0]),   // red
    ];
    for w in stops.windows(2) {
        let (t0, c0) = w[0];
        let (t1, c1) = w[1];
        if v <= t1 {
            let f = if t1 > t0 { (v - t0) / (t1 - t0) } else { 0.0 };
            return [
                (c0[0] + f * (c1[0] - c0[0])) as u8, // CAST: lerp of u8 endpoints stays in 0..=255
                (c0[1] + f * (c1[1] - c0[1])) as u8, // CAST: lerp of u8 endpoints stays in 0..=255
                (c0[2] + f * (c1[2] - c0[2])) as u8, // CAST: lerp of u8 endpoints stays in 0..=255
            ];
        }
    }
    [210, 35, 30]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_pixels() {
        let mut img = Image::new(4, 3).unwrap();
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
        img.set(1, 2, [10, 20, 30]);
        assert_eq!(img.get(1, 2), [10, 20, 30]);
        // Out-of-bounds set is a no-op.
        img.set(100, 100, [1, 1, 1]);
    }

    #[test]
    fn rejects_zero_dims() {
        assert!(Image::new(0, 5).is_err());
        assert!(Image::new(5, 0).is_err());
    }

    #[test]
    fn ppm_format_is_valid() {
        let mut img = Image::new(2, 2).unwrap();
        img.set(0, 0, [255, 0, 0]);
        let mut buf = Vec::new();
        img.write_ppm_to(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n2 2\n255\n"));
        // Header + 12 payload bytes.
        let header_len = b"P6\n2 2\n255\n".len();
        assert_eq!(buf.len(), header_len + 12);
        assert_eq!(&buf[header_len..header_len + 3], &[255, 0, 0]);
    }

    #[test]
    fn heat_ramp_endpoints_and_monotone_red() {
        let cold = heat_color(0.0);
        let hot = heat_color(1.0);
        assert!(cold[2] > cold[0], "cold end should be blue");
        assert!(hot[0] > hot[2], "hot end should be red");
        // Clamping.
        assert_eq!(heat_color(-1.0), cold);
        assert_eq!(heat_color(2.0), hot);
    }
}
