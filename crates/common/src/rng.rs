//! Deterministic pseudo-random number generation.
//!
//! A self-contained xoshiro256++ generator seeded through SplitMix64. This
//! keeps `tkdc-common` dependency-free while giving every experiment a
//! reproducible randomness source; the `rand`-based generators in
//! `tkdc-data` are only used for workload synthesis.

/// xoshiro256++ PRNG with SplitMix64 seeding.
///
/// Not cryptographically secure; intended for sampling, shuffling, and
/// synthetic data generation.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire (2019): unbiased bounded integers via 128-bit multiply.
        let mut m = (self.next_u64() as u128) * (bound as u128); // CAST: u64 -> u128 widening for the 128-bit product
        let mut lo = m as u64; // CAST: low 64 bits, intentionally
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = (self.next_u64() as u128) * (bound as u128); // CAST: u64 -> u128 widening for the 128-bit product
                lo = m as u64; // CAST: low 64 bits, intentionally
            }
        }
        (m >> 64) as u64 // CAST: m >> 64 fits u64 exactly
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal variate via the Marsaglia polar method.
    pub fn standard_normal(&mut self) -> f64 {
        // The polar method needs no transcendental functions beyond ln/sqrt
        // and rejects ~21% of candidate pairs.
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.standard_normal()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize; // CAST: i < n fits u64; result <= i fits usize
            xs.swap(i, j);
        }
    }

    /// Draws an index from a discrete distribution given by `weights`.
    ///
    /// Weights need not be normalized; zero-weight entries are never chosen.
    ///
    /// # Panics
    /// Panics when all weights are zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must have positive finite sum"
        );
        let mut u = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("at least one positive weight") // INVARIANT: total > 0 asserted above
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Rng::seed_from(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut rng = Rng::seed_from(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Rng::seed_from(0).next_below(0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::seed_from(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(17);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(xs, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::seed_from(23);
        let w = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn uniform_in_interval() {
        let mut rng = Rng::seed_from(31);
        for _ in 0..1000 {
            let x = rng.uniform(-3.0, 2.0);
            assert!((-3.0..2.0).contains(&x));
        }
    }
}
