//! Blocking client for the `tkdc-serve` wire protocol.
//!
//! One method per request type; every method sends a single frame and
//! reads a single frame back, so a `Client` is also a reference
//! implementation of the protocol's strict request/response pairing.
//! Error responses from the server surface as
//! [`tkdc_common::Error::Protocol`] carrying the server's error code
//! and message.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tkdc::Label;
use tkdc_common::error::{protocol_error, Result};
use tkdc_common::Matrix;

use crate::protocol::{
    error_response_to_error, read_response, write_request, Request, Response, StatsSnapshot,
};

/// A blocking connection to a `tkdc-serve` daemon.
pub struct Client {
    stream: TcpStream,
    nonce: u64,
}

impl Client {
    /// Connects with no I/O timeouts (calls block until the server
    /// answers). Prefer [`Client::connect_with_timeout`] in production.
    pub fn connect(addr: &str) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, nonce: 0 })
    }

    /// Connects with the given timeout applied to the connection
    /// attempt and to every subsequent read and write.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> Result<Self> {
        let sock_addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| protocol_error(format!("address {addr:?} resolved to nothing")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream, nonce: 0 })
    }

    fn call(&mut self, req: &Request) -> Result<Response> {
        write_request(&mut self.stream, req)?;
        match read_response(&mut self.stream)? {
            Some(Response::Error { code, message }) => Err(error_response_to_error(code, &message)),
            Some(resp) => Ok(resp),
            None => Err(protocol_error("server closed the connection mid-exchange")),
        }
    }

    /// Liveness probe; verifies the server echoes the nonce.
    pub fn ping(&mut self) -> Result<()> {
        self.nonce = self.nonce.wrapping_add(1);
        let nonce = self.nonce;
        match self.call(&Request::Ping { nonce })? {
            Response::Pong { nonce: echoed } if echoed == nonce => Ok(()),
            Response::Pong { nonce: echoed } => Err(protocol_error(format!(
                "ping nonce mismatch: sent {nonce}, got {echoed}"
            ))),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Classifies a micro-batch; labels come back in query order.
    pub fn classify(&mut self, points: &Matrix) -> Result<Vec<Label>> {
        match self.call(&Request::Classify {
            points: points.clone(),
        })? {
            Response::Labels(labels) => {
                if labels.len() == points.rows() {
                    Ok(labels)
                } else {
                    Err(protocol_error(format!(
                        "label count {} does not match query count {}",
                        labels.len(),
                        points.rows()
                    )))
                }
            }
            other => Err(unexpected("Labels", &other)),
        }
    }

    /// Certified `(lower, upper)` density bounds for a micro-batch.
    pub fn density(&mut self, points: &Matrix) -> Result<Vec<(f64, f64)>> {
        match self.call(&Request::Density {
            points: points.clone(),
        })? {
            Response::Bounds(bounds) => {
                if bounds.len() == points.rows() {
                    Ok(bounds)
                } else {
                    Err(protocol_error(format!(
                        "bound count {} does not match query count {}",
                        bounds.len(),
                        points.rows()
                    )))
                }
            }
            other => Err(unexpected("Bounds", &other)),
        }
    }

    /// Fetches the server's metrics snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        match self.call(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> tkdc_common::Error {
    let kind = match got {
        Response::Pong { .. } => "Pong",
        Response::Labels(_) => "Labels",
        Response::Bounds(_) => "Bounds",
        Response::Stats(_) => "Stats",
        Response::ShutdownAck => "ShutdownAck",
        Response::Error { .. } => "Error",
    };
    protocol_error(format!("expected a {wanted} response, got {kind}"))
}
