#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tkdc-serve
//!
//! A dependency-free (std-only) model-serving daemon for fitted tKDC
//! classifiers, plus the client library that speaks its wire protocol.
//!
//! tKDC's value proposition is train-once/serve-many: fitting (threshold
//! bootstrap + full index build + training-density pass) is expensive,
//! while a single pruned classification is microseconds. This crate turns
//! the persisted-model format (`tkdc::model_io`) and the work-stealing
//! batch engine (`tkdc::engine`) into an actual inference service:
//!
//! * [`Server`] — a multi-threaded TCP daemon that loads one immutable
//!   model at startup and answers the versioned, length-prefixed binary
//!   protocol defined in [`protocol`]: `Ping`, `Classify`, `Density`,
//!   `Stats`, `Shutdown`. Every `Classify`/`Density` request is a
//!   micro-batch executed through `Classifier::classify_batch_with`
//!   under a work-stealing [`tkdc::ExecPolicy`].
//! * [`Client`] — a blocking client with one method per request type.
//! * [`metrics`] — lock-free server metrics (request/error counters and
//!   a log-scale latency histogram with both since-start and
//!   sliding-window views) queryable over the wire via `Stats`.
//! * [`http`] — a minimal std-only HTTP responder serving the same
//!   metrics as a Prometheus text exposition (`GET /metrics`), enabled
//!   via [`ServeConfig::metrics_addr`].
//!
//! Observability sinks (all optional, see [`ServeConfig`]): a Chrome
//! `trace_event` / `tkdc-trace/v2` span trace of every request
//! (`span_out`), and a `tkdc-slowlog/v1` slow-query log with per-stage
//! span breakdowns (`slow_log` + `slow_ms`).
//!
//! Robustness properties (all covered by `tests/serve_roundtrip.rs`):
//! per-connection read/write timeouts, a hard connection cap with a
//! clean `OverCapacity` protocol rejection, a maximum frame size, and
//! graceful drain-on-shutdown (in-flight requests complete; the accept
//! loop joins every connection handler before the process exits).
//!
//! ```no_run
//! use tkdc_serve::{Client, ServeConfig, Server};
//! # fn main() -> tkdc_common::Result<()> {
//! # let classifier: tkdc::Classifier = unimplemented!();
//! let server = Server::bind(ServeConfig::default(), classifier)?;
//! let addr = server.local_addr()?;
//! let handle = server.spawn();
//! let mut client = Client::connect(&addr.to_string())?;
//! client.ping()?;
//! client.shutdown()?;
//! handle.join()?;
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod http;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use http::{MetricsHandle, MetricsServer};
pub use metrics::Metrics;
pub use protocol::{ErrorCode, Request, Response, StatsSnapshot, PROTOCOL_VERSION};
pub use server::{ServeConfig, Server, ServerHandle, SLOWLOG_SCHEMA};
