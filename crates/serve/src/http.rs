//! A minimal, dependency-free HTTP/1.1 responder for the Prometheus
//! metrics endpoint.
//!
//! This is deliberately not a web server: it answers exactly one route
//! (`GET /metrics`) with a freshly rendered [text-format] exposition,
//! closes every connection after one response, and rejects everything
//! else with `404`/`405`. Request parsing reads only the request line —
//! headers are drained and ignored — so the handler holds no state a
//! hostile client could grow. One thread serves scrapes sequentially;
//! Prometheus scrapes are sparse (seconds apart) and a render is
//! microseconds, so a scrape backlog cannot form under any sane
//! configuration.
//!
//! [text-format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use tkdc_sync::atomic::{AtomicBool, Ordering};
use tkdc_sync::thread::{self, JoinHandle};
use tkdc_sync::Arc;

use tkdc_common::error::{protocol_error, Result};

/// How long a scraper may dawdle over its request line or response
/// body before the connection is dropped.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound (but not yet serving) metrics endpoint.
pub struct MetricsServer {
    listener: TcpListener,
    addr: SocketAddr,
}

/// Join handle for a running metrics endpoint.
pub struct MetricsHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl MetricsServer {
    /// Binds the endpoint (`host:port`; port 0 picks an ephemeral port).
    pub fn bind(addr: &str) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self { listener, addr })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts the accept loop on a background thread. `render` is
    /// called once per `GET /metrics` to produce the exposition body.
    pub fn spawn(self, render: Arc<dyn Fn() -> String + Send + Sync>) -> MetricsHandle {
        let MetricsServer { listener, addr } = self;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = thread::spawn(move || {
            for conn in listener.incoming() {
                // ORDERING: Acquire pairs with the Release store in
                // `MetricsHandle::shutdown` — the loop exits promptly
                // after the self-connect wake-up.
                if flag.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = conn {
                    // A misbehaving scraper only loses its own scrape.
                    let _ = answer_scrape(stream, render.as_ref());
                }
            }
        });
        MetricsHandle {
            addr,
            shutdown,
            handle,
        }
    }
}

impl MetricsHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins its thread.
    pub fn shutdown(self) -> Result<()> {
        // ORDERING: Release pairs with the Acquire load in the accept
        // loop; the throwaway self-connection unblocks `accept()`.
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        // JOIN: the exporter thread is joined here, so no scrape
        // handler outlives the server that owns the rendered state.
        self.handle
            .join()
            .map_err(|_| protocol_error("metrics exporter thread panicked"))
    }
}

/// Reads one request line, routes it, writes one response, closes.
fn answer_scrape(stream: TcpStream, render: &(dyn Fn() -> String + Send + Sync)) -> Result<()> {
    stream.set_read_timeout(Some(SCRAPE_TIMEOUT))?;
    stream.set_write_timeout(Some(SCRAPE_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so the peer's send buffer empties before we close
    // (avoids RST-before-response on eager clients).
    let mut header = String::new();
    loop {
        header.clear();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render(),
        ),
        ("GET", _) => ("404 Not Found", "text/plain", "not found\n".to_string()),
        _ => (
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n".to_string(),
        ),
    };
    let mut stream = reader.into_inner();
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_rejects_other_routes() {
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = server.spawn(Arc::new(|| "tkdc_up 1\n".to_string()));

        let ok = scrape(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.ends_with("tkdc_up 1\n"));

        let missing = scrape(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let post = scrape(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");

        handle.shutdown().unwrap();
    }

    #[test]
    fn render_runs_per_scrape() {
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let hits = Arc::new(tkdc_sync::atomic::AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let handle = server.spawn(Arc::new(move || {
            // ORDERING: Relaxed — a test counter, no data published.
            format!("tkdc_scrapes {}\n", h.fetch_add(1, Ordering::Relaxed) + 1)
        }));
        let first = scrape(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        let second = scrape(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(first.ends_with("tkdc_scrapes 1\n"), "{first}");
        assert!(second.ends_with("tkdc_scrapes 2\n"), "{second}");
        handle.shutdown().unwrap();
    }
}
