//! The serving daemon: a multi-threaded TCP accept loop over an
//! immutable fitted [`Classifier`].
//!
//! ## Architecture
//!
//! One thread runs the accept loop; each accepted connection gets its
//! own handler thread (connections are long-lived and micro-batched, so
//! a thread per connection is cheap relative to the work it carries —
//! the *query* parallelism lives inside the work-stealing batch engine,
//! not in the connection fan-out). Shared state is a single
//! [`Arc<Shared>`]: the classifier (read-only after fit), the
//! [`Metrics`] block (lock-free atomics), a shutdown flag, and the
//! bound address used to self-connect and unblock `accept()` when a
//! `Shutdown` request arrives.
//!
//! ## Robustness
//!
//! * **Connection cap** — at `max_conns` concurrent connections, new
//!   arrivals receive one `OverCapacity` error frame and are closed;
//!   nothing queues unboundedly.
//! * **Timeouts** — every connection carries read *and* write timeouts;
//!   an idle or stalled peer gets a `Timeout` error frame and is
//!   dropped instead of pinning a handler forever.
//! * **Graceful drain** — `Shutdown` flips the shutdown flag, wakes the
//!   acceptor, and the accept loop then joins every live handler:
//!   in-flight requests finish, idle handlers notice the flag within
//!   one read-timeout tick, and `run()` returns only when all handler
//!   threads have exited.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use tkdc::{Classifier, ExecPolicy};
use tkdc_common::error::{protocol_error, Error, Result};

use crate::metrics::{add, inc, Metrics};
use crate::protocol::{read_request, write_response, ErrorCode, Request, Response};

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads for each micro-batch (`None` = all available
    /// cores). This sets the [`ExecPolicy`] used per request; it does
    /// not bound the number of connection handler threads.
    pub threads: Option<usize>,
    /// Maximum concurrent connections before new arrivals are rejected
    /// with an `OverCapacity` error frame.
    pub max_conns: usize,
    /// Per-connection read/write timeout. Also bounds how long an idle
    /// handler takes to notice a shutdown.
    pub timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: None,
            max_conns: 64,
            timeout: Duration::from_secs(10),
        }
    }
}

/// State shared between the accept loop and every connection handler.
struct Shared {
    classifier: Classifier,
    policy: ExecPolicy,
    metrics: Metrics,
    shutdown: AtomicBool,
    addr: SocketAddr,
    max_conns: usize,
    timeout: Duration,
}

/// A bound (but not yet running) serving daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Join handle for a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    handle: JoinHandle<Result<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to finish draining and returns its result.
    pub fn join(self) -> Result<()> {
        match self.handle.join() {
            Ok(res) => res,
            Err(_) => Err(protocol_error("server thread panicked")),
        }
    }
}

impl Server {
    /// Binds the listener and wraps the classifier; call [`Server::run`]
    /// or [`Server::spawn`] to start serving.
    pub fn bind(config: ServeConfig, classifier: Classifier) -> Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let policy = ExecPolicy::Parallel {
            threads: config.threads,
        };
        let shared = Arc::new(Shared {
            classifier,
            policy,
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            addr,
            max_conns: config.max_conns.max(1),
            timeout: config.timeout,
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs the accept loop on the calling thread until a `Shutdown`
    /// request drains the server. Returns after every connection
    /// handler has been joined.
    pub fn run(self) -> Result<()> {
        let Server { listener, shared } = self;
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for conn in listener.incoming() {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // Transient accept errors (e.g. the peer vanished
                // between SYN and accept) must not kill the daemon.
                Err(_) => continue,
            };
            handlers.retain(|h| !h.is_finished());
            inc(&shared.metrics.connections_accepted);
            // The accept loop is the only incrementer, so load-then-add
            // cannot overshoot the cap.
            let active = shared.metrics.active_connections.load(Ordering::Relaxed);
            // CAST: usize -> u64 is lossless on 64-bit targets
            if active >= shared.max_conns as u64 {
                reject_over_capacity(stream, &shared);
                continue;
            }
            add(&shared.metrics.active_connections, 1);
            let sh = Arc::clone(&shared);
            handlers.push(thread::spawn(move || {
                handle_connection(stream, &sh);
                sh.metrics
                    .active_connections
                    .fetch_sub(1, Ordering::Relaxed);
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread; the returned handle
    /// carries the bound address and joins the drain.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.shared.addr;
        let handle = thread::spawn(move || self.run());
        ServerHandle { addr, handle }
    }
}

/// Writes one `OverCapacity` error frame and drops the connection.
fn reject_over_capacity(mut stream: TcpStream, shared: &Shared) {
    inc(&shared.metrics.rejected_over_capacity);
    let _ = stream.set_write_timeout(Some(shared.timeout));
    let _ = write_response(
        &mut stream,
        &Response::Error {
            code: ErrorCode::OverCapacity,
            message: format!(
                "server at its {}-connection capacity; retry later",
                shared.max_conns
            ),
        },
    );
}

/// True when an error is the read/write timeout firing (surfaced by the
/// OS as `WouldBlock` or `TimedOut` depending on platform).
fn is_timeout(e: &Error) -> bool {
    matches!(
        e,
        Error::Io(io) if matches!(
            io.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    )
}

/// Maps a request-decoding failure onto a wire error code.
fn decode_error_code(e: &Error) -> ErrorCode {
    match e {
        Error::Protocol { message } if message.contains("unsupported protocol version") => {
            ErrorCode::UnsupportedVersion
        }
        Error::Protocol { message } if message.contains("byte cap") => ErrorCode::TooLarge,
        _ => ErrorCode::Malformed,
    }
}

/// Maps a classifier failure onto a wire error code: input-shaped
/// errors are the client's fault, anything else is `Internal`.
fn query_error_code(e: &Error) -> ErrorCode {
    match e {
        Error::DimensionMismatch { .. } | Error::EmptyInput(_) | Error::InvalidParameter { .. } => {
            ErrorCode::BadInput
        }
        _ => ErrorCode::Internal,
    }
}

/// Serves one connection until EOF, timeout, protocol error, or
/// shutdown. Returns nothing: every exit path has already told the
/// client what happened (or the client is gone).
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.timeout));
    let _ = stream.set_write_timeout(Some(shared.timeout));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = write_response(
                &mut stream,
                &Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining".to_string(),
                },
            );
            return;
        }
        let req = match read_request(&mut stream) {
            Ok(None) => return, // clean close between frames
            Ok(Some(req)) => req,
            Err(e) if is_timeout(&e) => {
                // Idle past the deadline. During a drain this is how
                // parked handlers exit; otherwise it is a client fault.
                if !shared.shutdown.load(Ordering::Acquire) {
                    inc(&shared.metrics.timeouts);
                    let _ = write_response(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::Timeout,
                            message: format!(
                                "no request within the {:?} read timeout",
                                shared.timeout
                            ),
                        },
                    );
                }
                return;
            }
            Err(e) => {
                inc(&shared.metrics.requests_total);
                inc(&shared.metrics.errors_total);
                let _ = write_response(
                    &mut stream,
                    &Response::Error {
                        code: decode_error_code(&e),
                        message: e.to_string(),
                    },
                );
                return; // framing is unrecoverable: close
            }
        };
        let start = Instant::now();
        let (resp, shutdown_requested) = respond(shared, req);
        inc(&shared.metrics.requests_total);
        if matches!(resp, Response::Error { .. }) {
            inc(&shared.metrics.errors_total);
        }
        shared.metrics.record_latency(start.elapsed());
        if write_response(&mut stream, &resp).is_err() {
            return; // peer gone or stalled past the write timeout
        }
        if shutdown_requested {
            initiate_shutdown(shared);
            return;
        }
    }
}

/// Executes one decoded request against the shared classifier.
fn respond(shared: &Shared, req: Request) -> (Response, bool) {
    match req {
        Request::Ping { nonce } => {
            inc(&shared.metrics.pings);
            (Response::Pong { nonce }, false)
        }
        Request::Classify { points } => {
            inc(&shared.metrics.classifies);
            match shared
                .classifier
                .classify_batch_with(&points, shared.policy)
            {
                Ok((labels, _stats)) => {
                    add(&shared.metrics.points_classified, labels.len() as u64); // CAST: row count
                    (Response::Labels(labels), false)
                }
                Err(e) => (
                    Response::Error {
                        code: query_error_code(&e),
                        message: e.to_string(),
                    },
                    false,
                ),
            }
        }
        Request::Density { points } => {
            inc(&shared.metrics.densities);
            match shared
                .classifier
                .bound_density_batch_with(&points, shared.policy)
            {
                Ok((bounds, _stats)) => {
                    add(&shared.metrics.points_bounded, bounds.len() as u64); // CAST: row count
                    let pairs = bounds.iter().map(|b| (b.lower, b.upper)).collect();
                    (Response::Bounds(pairs), false)
                }
                Err(e) => (
                    Response::Error {
                        code: query_error_code(&e),
                        message: e.to_string(),
                    },
                    false,
                ),
            }
        }
        Request::Stats => {
            inc(&shared.metrics.stats_requests);
            (Response::Stats(shared.metrics.snapshot()), false)
        }
        Request::Shutdown => (Response::ShutdownAck, true),
    }
}

/// Flips the shutdown flag and unblocks the accept loop with a
/// throwaway self-connection (`accept()` has no other wake-up).
fn initiate_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
}
