//! The serving daemon: a multi-threaded TCP accept loop over an
//! immutable fitted [`Classifier`].
//!
//! ## Architecture
//!
//! One thread runs the accept loop; each accepted connection gets its
//! own handler thread (connections are long-lived and micro-batched, so
//! a thread per connection is cheap relative to the work it carries —
//! the *query* parallelism lives inside the work-stealing batch engine,
//! not in the connection fan-out). Shared state is a single
//! [`Arc<Shared>`]: the classifier (read-only after fit), the
//! [`Metrics`] block (lock-free atomics), a shutdown flag, and the
//! bound address used to self-connect and unblock `accept()` when a
//! `Shutdown` request arrives.
//!
//! ## Observability
//!
//! Three optional sinks, all off by default and all zero-cost when off:
//!
//! * **Metrics endpoint** ([`ServeConfig::metrics_addr`]) — a second
//!   listener (see [`crate::http`]) answering `GET /metrics` with the
//!   Prometheus text rendering of the transport counters, the engine
//!   registry, both latency views, and the batch engine's per-worker
//!   pool telemetry.
//! * **Span trace** ([`ServeConfig::span_out`]) — every request runs
//!   under a `serve.request` / `serve.exec` span pair (plus the
//!   classifier's own classify stage spans) on one shared timeline; at
//!   drain the collected events are written as Chrome `trace_event`
//!   JSON (default) or `tkdc-trace/v2` JSONL (`.jsonl` path).
//! * **Slow-query log** ([`ServeConfig::slow_log`]) — requests at or
//!   above [`ServeConfig::slow_ms`] milliseconds append one
//!   `tkdc-slowlog/v1` JSON line with the request's span breakdown.
//!
//! ## Robustness
//!
//! * **Connection cap** — at `max_conns` concurrent connections, new
//!   arrivals receive one `OverCapacity` error frame and are closed;
//!   nothing queues unboundedly.
//! * **Timeouts** — every connection carries read *and* write timeouts;
//!   an idle or stalled peer gets a `Timeout` error frame and is
//!   dropped instead of pinning a handler forever.
//! * **Graceful drain** — `Shutdown` flips the shutdown flag, wakes the
//!   acceptor, and the accept loop then joins every live handler:
//!   in-flight requests finish, idle handlers notice the flag within
//!   one read-timeout tick, and `run()` returns only when all handler
//!   threads have exited (and any span trace has been flushed).

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tkdc_sync::atomic::{AtomicBool, Ordering};
use tkdc_sync::thread::{self, JoinHandle};
use tkdc_sync::{Arc, Mutex};

use tkdc::{Classifier, ExecPolicy, QueryStats, QueryTrace, Spans, TraceWriter};
use tkdc_common::error::{protocol_error, Error, Result};
use tkdc_obs::span::SpanRecord;
use tkdc_obs::{chrome_trace_json, complete_spans, span_v2_lines, Exposition};

use crate::http::{MetricsHandle, MetricsServer};
use crate::metrics::Metrics;
use crate::protocol::{read_request, write_response, ErrorCode, Request, Response};

/// Slow-query threshold used when a slow log is configured without an
/// explicit [`ServeConfig::slow_ms`].
const DEFAULT_SLOW_MS: u64 = 100;

/// Schema tag on every slow-query log line.
pub const SLOWLOG_SCHEMA: &str = "tkdc-slowlog/v1";

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads for each micro-batch (`None` = all available
    /// cores). This sets the [`ExecPolicy`] used per request; it does
    /// not bound the number of connection handler threads. Requests
    /// reuse the classifier's persistent worker pool — threads are
    /// spawned once on the first parallel batch and parked between
    /// requests, never respawned per batch.
    pub threads: Option<usize>,
    /// Maximum concurrent connections before new arrivals are rejected
    /// with an `OverCapacity` error frame.
    pub max_conns: usize,
    /// Per-connection read/write timeout. Also bounds how long an idle
    /// handler takes to notice a shutdown.
    pub timeout: Duration,
    /// Optional JSONL trace sink (`tkdc-trace/v1`): when set, `Classify`
    /// and `Density` batches run with per-query tracing and append
    /// sampled traces here. Trace `query` indices are per-request batch
    /// positions (each micro-batch restarts at 0).
    pub trace_out: Option<PathBuf>,
    /// Trace sampling: record every `trace_every`-th query of each batch
    /// (`1` = all, `0` = tracing off even with a sink configured).
    pub trace_every: u64,
    /// Optional second listener serving `GET /metrics` in Prometheus
    /// text format (`host:port`; port 0 picks an ephemeral port).
    pub metrics_addr: Option<String>,
    /// Slow-query threshold in milliseconds (`0` logs every request);
    /// only meaningful together with [`ServeConfig::slow_log`]. `None`
    /// with a slow log configured defaults to 100 ms.
    pub slow_ms: Option<u64>,
    /// Optional slow-query log sink: one `tkdc-slowlog/v1` JSON line
    /// (with span breakdown) per request at or over the threshold.
    pub slow_log: Option<PathBuf>,
    /// Optional span-trace sink written at drain: Chrome `trace_event`
    /// JSON, or `tkdc-trace/v2` JSONL when the path ends in `.jsonl`.
    pub span_out: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: None,
            max_conns: 64,
            timeout: Duration::from_secs(10),
            trace_out: None,
            trace_every: 1,
            metrics_addr: None,
            slow_ms: None,
            slow_log: None,
            span_out: None,
        }
    }
}

/// State shared between the accept loop and every connection handler.
struct Shared {
    classifier: Classifier,
    policy: ExecPolicy,
    metrics: Metrics,
    shutdown: AtomicBool,
    addr: SocketAddr,
    max_conns: usize,
    timeout: Duration,
    /// JSONL trace sink shared by every handler thread; the mutex keeps
    /// whole trace lines atomic across concurrent batches.
    trace: Option<Mutex<TraceWriter<BufWriter<File>>>>,
    trace_every: u64,
    /// Common time base for every request's spans, so the drained trace
    /// is one coherent timeline across connections.
    span_base: Instant,
    /// Whether requests run with span recording at all (a span sink or
    /// a slow log is configured).
    collect_spans: bool,
    span_out: Option<PathBuf>,
    /// Span events from finished requests, drained into `span_out` when
    /// the server exits.
    span_events: Mutex<Vec<SpanRecord>>,
    slow_ms: u64,
    slow_log: Option<Mutex<BufWriter<File>>>,
}

/// A bound (but not yet running) serving daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    metrics_endpoint: Option<MetricsServer>,
}

/// Join handle for a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    handle: JoinHandle<Result<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to finish draining and returns its result.
    pub fn join(self) -> Result<()> {
        match self.handle.join() {
            Ok(res) => res,
            Err(_) => Err(protocol_error("server thread panicked")),
        }
    }
}

impl Server {
    /// Binds the listener (and the metrics endpoint, if configured) and
    /// wraps the classifier; call [`Server::run`] or [`Server::spawn`]
    /// to start serving.
    pub fn bind(config: ServeConfig, classifier: Classifier) -> Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let policy = ExecPolicy::Parallel {
            threads: config.threads,
        };
        let trace = match (&config.trace_out, config.trace_every) {
            (Some(path), every) if every > 0 => {
                let file = File::create(path)?;
                Some(Mutex::new(TraceWriter::new(BufWriter::new(file))))
            }
            _ => None,
        };
        let slow_log = match &config.slow_log {
            Some(path) => Some(Mutex::new(BufWriter::new(File::create(path)?))),
            None => None,
        };
        let metrics_endpoint = match &config.metrics_addr {
            Some(addr) => Some(MetricsServer::bind(addr)?),
            None => None,
        };
        let collect_spans = config.span_out.is_some() || slow_log.is_some();
        let shared = Arc::new(Shared {
            classifier,
            policy,
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            addr,
            max_conns: config.max_conns.max(1),
            timeout: config.timeout,
            trace,
            trace_every: config.trace_every,
            span_base: Instant::now(),
            collect_spans,
            span_out: config.span_out.clone(),
            span_events: Mutex::new(Vec::new()),
            slow_ms: config.slow_ms.unwrap_or(DEFAULT_SLOW_MS),
            slow_log,
        });
        Ok(Self {
            listener,
            shared,
            metrics_endpoint,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// The bound metrics-endpoint address, when one is configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_endpoint.as_ref().map(|m| m.local_addr())
    }

    /// Runs the accept loop on the calling thread until a `Shutdown`
    /// request drains the server. Returns after every connection
    /// handler has been joined and any span trace has been written.
    pub fn run(self) -> Result<()> {
        let Server {
            listener,
            shared,
            metrics_endpoint,
        } = self;
        let exporter: Option<MetricsHandle> = metrics_endpoint.map(|m| {
            let sh = Arc::clone(&shared);
            m.spawn(Arc::new(move || prometheus_text(&sh)))
        });
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for conn in listener.incoming() {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // Transient accept errors (e.g. the peer vanished
                // between SYN and accept) must not kill the daemon.
                Err(_) => continue,
            };
            handlers.retain(|h| !h.is_finished());
            shared.metrics.connections_accepted.inc();
            // The accept loop is the only incrementer, so load-then-add
            // cannot overshoot the cap.
            let active = shared.metrics.active_connections.get();
            // CAST: usize -> u64 is lossless on 64-bit targets
            if active >= shared.max_conns as u64 {
                reject_over_capacity(stream, &shared);
                continue;
            }
            shared.metrics.active_connections.add(1);
            let sh = Arc::clone(&shared);
            handlers.push(thread::spawn(move || {
                handle_connection(stream, &sh);
                sh.metrics.active_connections.sub(1);
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        if let Some(h) = exporter {
            h.shutdown()?;
        }
        write_span_trace(&shared)?;
        Ok(())
    }

    /// Runs the server on a background thread; the returned handle
    /// carries the bound address and joins the drain.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.shared.addr;
        let handle = thread::spawn(move || self.run());
        ServerHandle { addr, handle }
    }
}

/// Writes the collected span events to the configured sink: `.jsonl`
/// paths get `tkdc-trace/v2` JSONL, everything else Chrome
/// `trace_event` JSON.
fn write_span_trace(shared: &Shared) -> Result<()> {
    let Some(path) = &shared.span_out else {
        return Ok(());
    };
    let events = match shared.span_events.lock() {
        Ok(mut v) => std::mem::take(&mut *v),
        Err(_) => Vec::new(),
    };
    let text = if path.extension().is_some_and(|e| e == "jsonl") {
        let mut t = span_v2_lines(&events);
        if !t.is_empty() {
            t.push('\n');
        }
        t
    } else {
        chrome_trace_json(&events)
    };
    fs::write(path, text)?;
    Ok(())
}

/// Renders the full Prometheus exposition for one scrape: transport
/// counters, the engine registry (work mix + label mix), both latency
/// views, and the batch engine's per-worker pool telemetry — every
/// series labelled with the served model's backend and bound kind.
fn prometheus_text(shared: &Shared) -> String {
    let m = &shared.metrics;
    let labels: Vec<(&str, String)> = vec![
        ("backend", shared.classifier.backend_name().to_string()),
        (
            "bound_kind",
            shared.classifier.bound_kind().as_str().to_string(),
        ),
    ];
    let mut exp = Exposition::new();
    for (name, value) in [
        ("serve.requests_total", m.requests_total.get()),
        ("serve.errors_total", m.errors_total.get()),
        ("serve.pings", m.pings.get()),
        ("serve.classifies", m.classifies.get()),
        ("serve.densities", m.densities.get()),
        ("serve.stats_requests", m.stats_requests.get()),
        ("serve.points_classified", m.points_classified.get()),
        ("serve.points_bounded", m.points_bounded.get()),
        (
            "serve.rejected_over_capacity",
            m.rejected_over_capacity.get(),
        ),
        ("serve.timeouts", m.timeouts.get()),
        ("serve.connections_accepted", m.connections_accepted.get()),
    ] {
        exp.counter(name, &labels, value);
    }
    // CAST: connection counts are far below 2^53
    exp.gauge(
        "serve.active_connections",
        &labels,
        m.active_connections.get() as f64,
    );
    exp.registry(&m.engine_snapshot(), &labels);
    exp.histogram("serve.request_latency_us", &labels, &m.latency_buckets());
    let mut window_labels = labels.clone();
    window_labels.push(("window_seconds", m.window_seconds().to_string()));
    exp.histogram(
        "serve.request_latency_window_us",
        &window_labels,
        &m.window_latency_buckets(),
    );
    let telemetry = shared.classifier.pool_telemetry();
    for (k, w) in telemetry.workers.iter().enumerate() {
        let mut worker_labels = labels.clone();
        worker_labels.push(("worker", k.to_string()));
        pool_worker_series(&mut exp, &worker_labels, w);
    }
    let mut submitter_labels = labels.clone();
    submitter_labels.push(("worker", "submitter".to_string()));
    pool_worker_series(&mut exp, &submitter_labels, &telemetry.submitters);
    exp.gauge("pool.utilization", &labels, telemetry.utilization());
    exp.finish()
}

/// Appends one worker's (or the submitter aggregate's) pool counters.
fn pool_worker_series(
    exp: &mut Exposition,
    labels: &[(&str, String)],
    w: &tkdc::engine::WorkerTelemetry,
) {
    exp.counter("pool.tasks_run", labels, w.tasks_run);
    exp.counter("pool.chunks_stolen", labels, w.chunks_stolen);
    exp.counter("pool.parks", labels, w.parks);
    exp.counter("pool.unparks", labels, w.unparks);
    exp.counter("pool.busy_ns", labels, w.busy_ns);
    exp.counter("pool.idle_ns", labels, w.idle_ns);
}

/// Writes one `OverCapacity` error frame and drops the connection.
fn reject_over_capacity(mut stream: TcpStream, shared: &Shared) {
    shared.metrics.rejected_over_capacity.inc();
    let _ = stream.set_write_timeout(Some(shared.timeout));
    let _ = write_response(
        &mut stream,
        &Response::Error {
            code: ErrorCode::OverCapacity,
            message: format!(
                "server at its {}-connection capacity; retry later",
                shared.max_conns
            ),
        },
    );
}

/// True when an error is the read/write timeout firing (surfaced by the
/// OS as `WouldBlock` or `TimedOut` depending on platform).
fn is_timeout(e: &Error) -> bool {
    matches!(
        e,
        Error::Io(io) if matches!(
            io.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    )
}

/// Maps a request-decoding failure onto a wire error code.
fn decode_error_code(e: &Error) -> ErrorCode {
    match e {
        Error::Protocol { message } if message.contains("unsupported protocol version") => {
            ErrorCode::UnsupportedVersion
        }
        Error::Protocol { message } if message.contains("byte cap") => ErrorCode::TooLarge,
        _ => ErrorCode::Malformed,
    }
}

/// Maps a classifier failure onto a wire error code: input-shaped
/// errors are the client's fault, anything else is `Internal`.
fn query_error_code(e: &Error) -> ErrorCode {
    match e {
        Error::DimensionMismatch { .. } | Error::EmptyInput(_) | Error::InvalidParameter { .. } => {
            ErrorCode::BadInput
        }
        _ => ErrorCode::Internal,
    }
}

/// Wire-level operation name for the slow-query log.
fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Ping { .. } => "ping",
        Request::Classify { .. } => "classify",
        Request::Density { .. } => "density",
        Request::Stats => "stats",
        Request::Shutdown => "shutdown",
    }
}

/// Serves one connection until EOF, timeout, protocol error, or
/// shutdown. Returns nothing: every exit path has already told the
/// client what happened (or the client is gone).
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.timeout));
    let _ = stream.set_write_timeout(Some(shared.timeout));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = write_response(
                &mut stream,
                &Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining".to_string(),
                },
            );
            return;
        }
        let req = match read_request(&mut stream) {
            Ok(None) => return, // clean close between frames
            Ok(Some(req)) => req,
            Err(e) if is_timeout(&e) => {
                // Idle past the deadline. During a drain this is how
                // parked handlers exit; otherwise it is a client fault.
                if !shared.shutdown.load(Ordering::Acquire) {
                    shared.metrics.timeouts.inc();
                    let _ = write_response(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::Timeout,
                            message: format!(
                                "no request within the {:?} read timeout",
                                shared.timeout
                            ),
                        },
                    );
                }
                return;
            }
            Err(e) => {
                shared.metrics.requests_total.inc();
                shared.metrics.errors_total.inc();
                let _ = write_response(
                    &mut stream,
                    &Response::Error {
                        code: decode_error_code(&e),
                        message: e.to_string(),
                    },
                );
                return; // framing is unrecoverable: close
            }
        };
        let op = op_name(&req);
        let batch_points = match &req {
            // CAST: row count widens losslessly to u64.
            Request::Classify { points } | Request::Density { points } => points.rows() as u64,
            _ => 0,
        };
        let spans = if shared.collect_spans {
            Spans::enabled_with_base(shared.span_base)
        } else {
            Spans::off()
        };
        let start = Instant::now();
        let request_span = spans.enter("serve.request");
        let (resp, shutdown_requested) = respond(shared, req, &spans);
        drop(request_span);
        let elapsed = start.elapsed();
        shared.metrics.requests_total.inc();
        if matches!(resp, Response::Error { .. }) {
            shared.metrics.errors_total.inc();
        }
        shared.metrics.record_latency(elapsed);
        finish_observability(shared, &spans, op, batch_points, elapsed);
        if write_response(&mut stream, &resp).is_err() {
            return; // peer gone or stalled past the write timeout
        }
        if shutdown_requested {
            initiate_shutdown(shared);
            return;
        }
    }
}

/// Drains one answered request's spans into the slow-query log (if it
/// crossed the threshold) and the server-wide span collector.
fn finish_observability(
    shared: &Shared,
    spans: &Spans,
    op: &'static str,
    points: u64,
    elapsed: Duration,
) {
    if !shared.collect_spans {
        return;
    }
    let records = spans.take();
    if let Some(log) = &shared.slow_log {
        // CAST: request latencies in milliseconds are far below u64
        if elapsed.as_millis() as u64 >= shared.slow_ms {
            write_slow_entry(log, op, points, elapsed, &records);
        }
    }
    if shared.span_out.is_some() {
        // INVARIANT: the collector mutex is only held for the extend; a
        // poisoned lock just drops this request's spans.
        if let Ok(mut events) = shared.span_events.lock() {
            events.extend(records);
        }
    }
}

/// Appends one `tkdc-slowlog/v1` line. Logging is best-effort
/// diagnostics: a full disk must not fail the query being logged, so
/// write errors are swallowed here. Span names come from the closed
/// [`tkdc_obs::STAGES`] vocabulary and `op` from [`op_name`], so no
/// JSON string escaping is needed.
fn write_slow_entry(
    log: &Mutex<BufWriter<File>>,
    op: &'static str,
    points: u64,
    elapsed: Duration,
    records: &[SpanRecord],
) {
    let breakdown = complete_spans(records)
        .iter()
        .map(|s| format!("{{\"name\":\"{}\",\"dur_us\":{}}}", s.name, s.dur_us))
        .collect::<Vec<_>>()
        .join(",");
    let line = format!(
        "{{\"schema\":\"{SLOWLOG_SCHEMA}\",\"op\":\"{op}\",\"points\":{points},\"elapsed_us\":{},\"spans\":[{breakdown}]}}",
        elapsed.as_micros()
    );
    // INVARIANT: the log mutex is only held for the write; a poisoned
    // lock just drops this entry.
    if let Ok(mut w) = log.lock() {
        let _ = writeln!(w, "{line}");
        // Slow events are rare and each line is evidence someone will
        // want even if the process dies next: flush per entry.
        let _ = w.flush();
    }
}

/// Executes one decoded request against the shared classifier.
fn respond(shared: &Shared, req: Request, spans: &Spans) -> (Response, bool) {
    match req {
        Request::Ping { nonce } => {
            shared.metrics.pings.inc();
            (Response::Pong { nonce }, false)
        }
        Request::Classify { points } => {
            shared.metrics.classifies.inc();
            let exec_span = spans.enter("serve.exec");
            let result = match &shared.trace {
                Some(sink) => shared
                    .classifier
                    .classify_batch_traced_spanned(
                        &points,
                        shared.policy,
                        shared.trace_every,
                        spans,
                    )
                    .map(|(labels, stats, traces)| {
                        write_traces(sink, &traces);
                        (labels, stats)
                    }),
                // The request's owned points ride into the pool job as
                // an Arc — no per-request copy of the batch.
                None => shared.classifier.classify_batch_shared_spanned(
                    Arc::new(points),
                    shared.policy,
                    spans,
                ),
            };
            drop(exec_span);
            match result {
                Ok((labels, stats)) => {
                    record_batch(shared, &stats);
                    shared.metrics.record_labels(&labels);
                    shared.metrics.points_classified.add(labels.len() as u64); // CAST: row count
                    (Response::Labels(labels), false)
                }
                Err(e) => (
                    Response::Error {
                        code: query_error_code(&e),
                        message: e.to_string(),
                    },
                    false,
                ),
            }
        }
        Request::Density { points } => {
            shared.metrics.densities.inc();
            let exec_span = spans.enter("serve.exec");
            let result = match &shared.trace {
                Some(sink) => shared
                    .classifier
                    .bound_density_batch_traced(&points, shared.policy, shared.trace_every)
                    .map(|(bounds, stats, traces)| {
                        write_traces(sink, &traces);
                        (bounds, stats)
                    }),
                None => shared.classifier.bound_density_batch_shared_spanned(
                    Arc::new(points),
                    shared.policy,
                    spans,
                ),
            };
            drop(exec_span);
            match result {
                Ok((bounds, stats)) => {
                    record_batch(shared, &stats);
                    shared.metrics.points_bounded.add(bounds.len() as u64); // CAST: row count
                    let pairs = bounds.iter().map(|b| (b.lower, b.upper)).collect();
                    (Response::Bounds(pairs), false)
                }
                Err(e) => (
                    Response::Error {
                        code: query_error_code(&e),
                        message: e.to_string(),
                    },
                    false,
                ),
            }
        }
        Request::Stats => {
            shared.metrics.stats_requests.inc();
            let mut snap = shared.metrics.snapshot();
            // Model provenance rides in the same frame as the counters,
            // so clients can tell certified answers from probabilistic
            // ones without a second request.
            snap.backend = shared.classifier.backend_name().to_string();
            snap.bound_kind = shared.classifier.bound_kind().as_str().to_string();
            (Response::Stats(snap), false)
        }
        Request::Shutdown => (Response::ShutdownAck, true),
    }
}

/// Folds an answered batch's merged engine statistics into the metrics
/// block, so `Stats` snapshots expose the pruning work mix.
fn record_batch(shared: &Shared, stats: &QueryStats) {
    shared.metrics.record_query_stats(stats);
}

/// Appends a batch's traces to the shared sink. Tracing is best-effort
/// diagnostics: a full disk or revoked file must not fail the query
/// that was being traced, so write errors are swallowed here.
fn write_traces(sink: &Mutex<TraceWriter<BufWriter<File>>>, traces: &[QueryTrace]) {
    if traces.is_empty() {
        return;
    }
    // INVARIANT: trace-writer mutex is only held for the write; a
    // poisoned lock just drops this batch's traces.
    if let Ok(mut w) = sink.lock() {
        let _ = w.write_all(traces);
    }
}

/// Flips the shutdown flag and unblocks the accept loop with a
/// throwaway self-connection (`accept()` has no other wake-up).
fn initiate_shutdown(shared: &Shared) {
    // ORDERING: Release pairs with the Acquire loads in the accept loop
    // and every handler — whatever the shutting-down request observed
    // (e.g. its own response being written) is visible to handlers that
    // see the flag. Model-checked by `serve_drain_*` in
    // tests/model_check.rs.
    shared.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
}
