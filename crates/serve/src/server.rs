//! The serving daemon: a multi-threaded TCP accept loop over an
//! immutable fitted [`Classifier`].
//!
//! ## Architecture
//!
//! One thread runs the accept loop; each accepted connection gets its
//! own handler thread (connections are long-lived and micro-batched, so
//! a thread per connection is cheap relative to the work it carries —
//! the *query* parallelism lives inside the work-stealing batch engine,
//! not in the connection fan-out). Shared state is a single
//! [`Arc<Shared>`]: the classifier (read-only after fit), the
//! [`Metrics`] block (lock-free atomics), a shutdown flag, and the
//! bound address used to self-connect and unblock `accept()` when a
//! `Shutdown` request arrives.
//!
//! ## Robustness
//!
//! * **Connection cap** — at `max_conns` concurrent connections, new
//!   arrivals receive one `OverCapacity` error frame and are closed;
//!   nothing queues unboundedly.
//! * **Timeouts** — every connection carries read *and* write timeouts;
//!   an idle or stalled peer gets a `Timeout` error frame and is
//!   dropped instead of pinning a handler forever.
//! * **Graceful drain** — `Shutdown` flips the shutdown flag, wakes the
//!   acceptor, and the accept loop then joins every live handler:
//!   in-flight requests finish, idle handlers notice the flag within
//!   one read-timeout tick, and `run()` returns only when all handler
//!   threads have exited.

use std::fs::File;
use std::io::{self, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tkdc_sync::atomic::{AtomicBool, Ordering};
use tkdc_sync::thread::{self, JoinHandle};
use tkdc_sync::{Arc, Mutex};

use tkdc::{Classifier, ExecPolicy, QueryStats, QueryTrace, TraceWriter};
use tkdc_common::error::{protocol_error, Error, Result};

use crate::metrics::Metrics;
use crate::protocol::{read_request, write_response, ErrorCode, Request, Response};

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads for each micro-batch (`None` = all available
    /// cores). This sets the [`ExecPolicy`] used per request; it does
    /// not bound the number of connection handler threads. Requests
    /// reuse the classifier's persistent worker pool — threads are
    /// spawned once on the first parallel batch and parked between
    /// requests, never respawned per batch.
    pub threads: Option<usize>,
    /// Maximum concurrent connections before new arrivals are rejected
    /// with an `OverCapacity` error frame.
    pub max_conns: usize,
    /// Per-connection read/write timeout. Also bounds how long an idle
    /// handler takes to notice a shutdown.
    pub timeout: Duration,
    /// Optional JSONL trace sink (`tkdc-trace/v1`): when set, `Classify`
    /// and `Density` batches run with per-query tracing and append
    /// sampled traces here. Trace `query` indices are per-request batch
    /// positions (each micro-batch restarts at 0).
    pub trace_out: Option<PathBuf>,
    /// Trace sampling: record every `trace_every`-th query of each batch
    /// (`1` = all, `0` = tracing off even with a sink configured).
    pub trace_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: None,
            max_conns: 64,
            timeout: Duration::from_secs(10),
            trace_out: None,
            trace_every: 1,
        }
    }
}

/// State shared between the accept loop and every connection handler.
struct Shared {
    classifier: Classifier,
    policy: ExecPolicy,
    metrics: Metrics,
    shutdown: AtomicBool,
    addr: SocketAddr,
    max_conns: usize,
    timeout: Duration,
    /// JSONL trace sink shared by every handler thread; the mutex keeps
    /// whole trace lines atomic across concurrent batches.
    trace: Option<Mutex<TraceWriter<BufWriter<File>>>>,
    trace_every: u64,
}

/// A bound (but not yet running) serving daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Join handle for a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    handle: JoinHandle<Result<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to finish draining and returns its result.
    pub fn join(self) -> Result<()> {
        match self.handle.join() {
            Ok(res) => res,
            Err(_) => Err(protocol_error("server thread panicked")),
        }
    }
}

impl Server {
    /// Binds the listener and wraps the classifier; call [`Server::run`]
    /// or [`Server::spawn`] to start serving.
    pub fn bind(config: ServeConfig, classifier: Classifier) -> Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let policy = ExecPolicy::Parallel {
            threads: config.threads,
        };
        let trace = match (&config.trace_out, config.trace_every) {
            (Some(path), every) if every > 0 => {
                let file = File::create(path)?;
                Some(Mutex::new(TraceWriter::new(BufWriter::new(file))))
            }
            _ => None,
        };
        let shared = Arc::new(Shared {
            classifier,
            policy,
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            addr,
            max_conns: config.max_conns.max(1),
            timeout: config.timeout,
            trace,
            trace_every: config.trace_every,
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs the accept loop on the calling thread until a `Shutdown`
    /// request drains the server. Returns after every connection
    /// handler has been joined.
    pub fn run(self) -> Result<()> {
        let Server { listener, shared } = self;
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for conn in listener.incoming() {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // Transient accept errors (e.g. the peer vanished
                // between SYN and accept) must not kill the daemon.
                Err(_) => continue,
            };
            handlers.retain(|h| !h.is_finished());
            shared.metrics.connections_accepted.inc();
            // The accept loop is the only incrementer, so load-then-add
            // cannot overshoot the cap.
            let active = shared.metrics.active_connections.get();
            // CAST: usize -> u64 is lossless on 64-bit targets
            if active >= shared.max_conns as u64 {
                reject_over_capacity(stream, &shared);
                continue;
            }
            shared.metrics.active_connections.add(1);
            let sh = Arc::clone(&shared);
            handlers.push(thread::spawn(move || {
                handle_connection(stream, &sh);
                sh.metrics.active_connections.sub(1);
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread; the returned handle
    /// carries the bound address and joins the drain.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.shared.addr;
        let handle = thread::spawn(move || self.run());
        ServerHandle { addr, handle }
    }
}

/// Writes one `OverCapacity` error frame and drops the connection.
fn reject_over_capacity(mut stream: TcpStream, shared: &Shared) {
    shared.metrics.rejected_over_capacity.inc();
    let _ = stream.set_write_timeout(Some(shared.timeout));
    let _ = write_response(
        &mut stream,
        &Response::Error {
            code: ErrorCode::OverCapacity,
            message: format!(
                "server at its {}-connection capacity; retry later",
                shared.max_conns
            ),
        },
    );
}

/// True when an error is the read/write timeout firing (surfaced by the
/// OS as `WouldBlock` or `TimedOut` depending on platform).
fn is_timeout(e: &Error) -> bool {
    matches!(
        e,
        Error::Io(io) if matches!(
            io.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    )
}

/// Maps a request-decoding failure onto a wire error code.
fn decode_error_code(e: &Error) -> ErrorCode {
    match e {
        Error::Protocol { message } if message.contains("unsupported protocol version") => {
            ErrorCode::UnsupportedVersion
        }
        Error::Protocol { message } if message.contains("byte cap") => ErrorCode::TooLarge,
        _ => ErrorCode::Malformed,
    }
}

/// Maps a classifier failure onto a wire error code: input-shaped
/// errors are the client's fault, anything else is `Internal`.
fn query_error_code(e: &Error) -> ErrorCode {
    match e {
        Error::DimensionMismatch { .. } | Error::EmptyInput(_) | Error::InvalidParameter { .. } => {
            ErrorCode::BadInput
        }
        _ => ErrorCode::Internal,
    }
}

/// Serves one connection until EOF, timeout, protocol error, or
/// shutdown. Returns nothing: every exit path has already told the
/// client what happened (or the client is gone).
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.timeout));
    let _ = stream.set_write_timeout(Some(shared.timeout));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = write_response(
                &mut stream,
                &Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining".to_string(),
                },
            );
            return;
        }
        let req = match read_request(&mut stream) {
            Ok(None) => return, // clean close between frames
            Ok(Some(req)) => req,
            Err(e) if is_timeout(&e) => {
                // Idle past the deadline. During a drain this is how
                // parked handlers exit; otherwise it is a client fault.
                if !shared.shutdown.load(Ordering::Acquire) {
                    shared.metrics.timeouts.inc();
                    let _ = write_response(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::Timeout,
                            message: format!(
                                "no request within the {:?} read timeout",
                                shared.timeout
                            ),
                        },
                    );
                }
                return;
            }
            Err(e) => {
                shared.metrics.requests_total.inc();
                shared.metrics.errors_total.inc();
                let _ = write_response(
                    &mut stream,
                    &Response::Error {
                        code: decode_error_code(&e),
                        message: e.to_string(),
                    },
                );
                return; // framing is unrecoverable: close
            }
        };
        let start = Instant::now();
        let (resp, shutdown_requested) = respond(shared, req);
        shared.metrics.requests_total.inc();
        if matches!(resp, Response::Error { .. }) {
            shared.metrics.errors_total.inc();
        }
        shared.metrics.record_latency(start.elapsed());
        if write_response(&mut stream, &resp).is_err() {
            return; // peer gone or stalled past the write timeout
        }
        if shutdown_requested {
            initiate_shutdown(shared);
            return;
        }
    }
}

/// Executes one decoded request against the shared classifier.
fn respond(shared: &Shared, req: Request) -> (Response, bool) {
    match req {
        Request::Ping { nonce } => {
            shared.metrics.pings.inc();
            (Response::Pong { nonce }, false)
        }
        Request::Classify { points } => {
            shared.metrics.classifies.inc();
            let result = match &shared.trace {
                Some(sink) => shared
                    .classifier
                    .classify_batch_traced(&points, shared.policy, shared.trace_every)
                    .map(|(labels, stats, traces)| {
                        write_traces(sink, &traces);
                        (labels, stats)
                    }),
                // The request's owned points ride into the pool job as
                // an Arc — no per-request copy of the batch.
                None => shared
                    .classifier
                    .classify_batch_shared(Arc::new(points), shared.policy),
            };
            match result {
                Ok((labels, stats)) => {
                    record_batch(shared, &stats);
                    shared.metrics.points_classified.add(labels.len() as u64); // CAST: row count
                    (Response::Labels(labels), false)
                }
                Err(e) => (
                    Response::Error {
                        code: query_error_code(&e),
                        message: e.to_string(),
                    },
                    false,
                ),
            }
        }
        Request::Density { points } => {
            shared.metrics.densities.inc();
            let result = match &shared.trace {
                Some(sink) => shared
                    .classifier
                    .bound_density_batch_traced(&points, shared.policy, shared.trace_every)
                    .map(|(bounds, stats, traces)| {
                        write_traces(sink, &traces);
                        (bounds, stats)
                    }),
                None => shared
                    .classifier
                    .bound_density_batch_shared(Arc::new(points), shared.policy),
            };
            match result {
                Ok((bounds, stats)) => {
                    record_batch(shared, &stats);
                    shared.metrics.points_bounded.add(bounds.len() as u64); // CAST: row count
                    let pairs = bounds.iter().map(|b| (b.lower, b.upper)).collect();
                    (Response::Bounds(pairs), false)
                }
                Err(e) => (
                    Response::Error {
                        code: query_error_code(&e),
                        message: e.to_string(),
                    },
                    false,
                ),
            }
        }
        Request::Stats => {
            shared.metrics.stats_requests.inc();
            let mut snap = shared.metrics.snapshot();
            // Model provenance rides in the same frame as the counters,
            // so clients can tell certified answers from probabilistic
            // ones without a second request.
            snap.backend = shared.classifier.backend_name().to_string();
            snap.bound_kind = shared.classifier.bound_kind().as_str().to_string();
            (Response::Stats(snap), false)
        }
        Request::Shutdown => (Response::ShutdownAck, true),
    }
}

/// Folds an answered batch's merged engine statistics into the metrics
/// block, so `Stats` snapshots expose the pruning work mix.
fn record_batch(shared: &Shared, stats: &QueryStats) {
    shared.metrics.record_query_stats(stats);
}

/// Appends a batch's traces to the shared sink. Tracing is best-effort
/// diagnostics: a full disk or revoked file must not fail the query
/// that was being traced, so write errors are swallowed here.
fn write_traces(sink: &Mutex<TraceWriter<BufWriter<File>>>, traces: &[QueryTrace]) {
    if traces.is_empty() {
        return;
    }
    // INVARIANT: trace-writer mutex is only held for the write; a
    // poisoned lock just drops this batch's traces.
    if let Ok(mut w) = sink.lock() {
        let _ = w.write_all(traces);
    }
}

/// Flips the shutdown flag and unblocks the accept loop with a
/// throwaway self-connection (`accept()` has no other wake-up).
fn initiate_shutdown(shared: &Shared) {
    // ORDERING: Release pairs with the Acquire loads in the accept loop
    // and every handler — whatever the shutting-down request observed
    // (e.g. its own response being written) is visible to handlers that
    // see the flag. Model-checked by `serve_drain_*` in
    // tests/model_check.rs.
    shared.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
}
