//! The `tkdc-serve` wire protocol: versioned, length-prefixed binary
//! frames (documented normatively in `DESIGN.md` §"Serving layer").
//!
//! ## Framing
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! u32 LE body_len | body
//! body = u8 protocol_version | u8 tag | payload
//! ```
//!
//! `body_len` counts the body only (version byte included) and must not
//! exceed [`MAX_FRAME_BYTES`]; oversized or short frames are rejected
//! before any allocation proportional to the claimed length is trusted.
//! All integers are little-endian; all floats are IEEE-754 binary64 LE.
//!
//! ## Requests (`tag` = opcode)
//!
//! | opcode | request | payload |
//! |--------|---------|---------|
//! | 0 | `Ping` | u64 nonce (echoed back) |
//! | 1 | `Classify` | u32 rows, u32 cols, rows·cols f64 |
//! | 2 | `Density` | u32 rows, u32 cols, rows·cols f64 |
//! | 3 | `Stats` | empty |
//! | 4 | `Shutdown` | empty |
//!
//! ## Responses (`tag` = status; 0 = ok, nonzero = [`ErrorCode`])
//!
//! An ok response's payload depends on the request: `Pong` echoes the
//! nonce; `Labels` is u32 n + n label bytes (0 = LOW, 1 = HIGH);
//! `Bounds` is u32 n + n × (f64 lower, f64 upper); `Stats` is the
//! [`StatsSnapshot`] encoding; `ShutdownAck` is empty. An error
//! response's payload is u32 len + UTF-8 message.

use std::io::{Read, Write};
use tkdc::Label;
use tkdc_common::error::{protocol_error, Error, Result};
use tkdc_common::Matrix;

/// Protocol version carried in every frame.
///
/// Version history: v1 was the original frame set; v2 extends the
/// `Stats` snapshot with the sliding-window latency view
/// (`window_latency_buckets` + `window_seconds`). Framing and every
/// other payload are unchanged.
pub const PROTOCOL_VERSION: u8 = 2;

/// Hard cap on a frame body, so a hostile or corrupt length prefix can
/// never drive an enormous allocation (64 MiB ≈ 4M 2-d query points).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Request opcodes.
const OP_PING: u8 = 0;
const OP_CLASSIFY: u8 = 1;
const OP_DENSITY: u8 = 2;
const OP_STATS: u8 = 3;
const OP_SHUTDOWN: u8 = 4;

/// Machine-readable error classes a server can return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame could not be decoded (bad opcode, short payload, …).
    Malformed = 1,
    /// The frame's protocol version is not supported by this server.
    UnsupportedVersion = 2,
    /// The server is at its connection cap; retry later.
    OverCapacity = 3,
    /// The request decoded but its content was rejected (dimension
    /// mismatch, NaN coordinates, …).
    BadInput = 4,
    /// The server failed internally while answering.
    Internal = 5,
    /// The frame exceeded [`MAX_FRAME_BYTES`].
    TooLarge = 6,
    /// The connection idled past the server's read timeout.
    Timeout = 7,
    /// The server is draining after a `Shutdown` request.
    ShuttingDown = 8,
}

impl ErrorCode {
    /// Decodes a status byte (which must be nonzero).
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(Self::Malformed),
            2 => Some(Self::UnsupportedVersion),
            3 => Some(Self::OverCapacity),
            4 => Some(Self::BadInput),
            5 => Some(Self::Internal),
            6 => Some(Self::TooLarge),
            7 => Some(Self::Timeout),
            8 => Some(Self::ShuttingDown),
            _ => None,
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; the server echoes the nonce.
    Ping {
        /// Opaque value echoed back in [`Response::Pong`].
        nonce: u64,
    },
    /// Classify a micro-batch of query points.
    Classify {
        /// Query points, one per row.
        points: Matrix,
    },
    /// Certified density bounds for a micro-batch of query points.
    Density {
        /// Query points, one per row.
        points: Matrix,
    },
    /// Fetch the server's metrics snapshot.
    Stats,
    /// Ask the server to drain in-flight work and exit.
    Shutdown,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Echo of a [`Request::Ping`].
    Pong {
        /// The request's nonce.
        nonce: u64,
    },
    /// Labels for a [`Request::Classify`], in query order.
    Labels(Vec<Label>),
    /// `(lower, upper)` density bounds for a [`Request::Density`].
    Bounds(Vec<(f64, f64)>),
    /// Metrics snapshot for a [`Request::Stats`].
    Stats(StatsSnapshot),
    /// Acknowledgement of a [`Request::Shutdown`].
    ShutdownAck,
    /// The request failed; the connection may be closed afterwards.
    Error {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

/// A point-in-time copy of the server's metrics (see
/// [`crate::metrics::Metrics`]), self-describing on the wire: latency
/// bucket upper bounds travel with their counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Requests decoded and answered (any type, ok or error).
    pub requests_total: u64,
    /// Requests answered with an error response.
    pub errors_total: u64,
    /// `Ping` requests answered.
    pub pings: u64,
    /// `Classify` requests answered.
    pub classifies: u64,
    /// `Density` requests answered.
    pub densities: u64,
    /// `Stats` requests answered.
    pub stats_requests: u64,
    /// Total query points classified across all `Classify` batches.
    pub points_classified: u64,
    /// Total query points bounded across all `Density` batches.
    pub points_bounded: u64,
    /// Connections turned away at the connection cap.
    pub rejected_over_capacity: u64,
    /// Connections closed by the read/write timeout.
    pub timeouts: u64,
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Request-latency histogram since startup: `(upper_bound_us,
    /// count)` per bucket, upper bounds ascending, last bucket
    /// `f64::INFINITY`.
    pub latency_buckets: Vec<(f64, u64)>,
    /// Request-latency histogram over the trailing sliding window
    /// (same bucket layout as `latency_buckets`).
    pub window_latency_buckets: Vec<(f64, u64)>,
    /// Width of the sliding window behind `window_latency_buckets`,
    /// in seconds.
    pub window_seconds: u64,
    /// Pruning-engine counters folded from every answered batch's
    /// `QueryStats` (names `engine.queries`, `engine.kernel_evals`, …),
    /// self-describing as `(name, value)` pairs so the frame layout
    /// never changes when counters are added.
    pub engine_counters: Vec<(String, u64)>,
    /// Density-backend name of the served model (`tree` | `hbe` | `rff`).
    pub backend: String,
    /// Bound provenance of the served model's answers: `certified`
    /// (exact interval arithmetic) or `probabilistic` (1 − δ confidence).
    pub bound_kind: String,
}

impl StatsSnapshot {
    /// Approximate latency quantile (`0 ≤ q ≤ 1`) in microseconds from
    /// the since-startup histogram: the upper bound of the bucket
    /// containing the q-th request. Returns 0 when no latencies were
    /// recorded.
    pub fn latency_quantile_us(&self, q: f64) -> f64 {
        tkdc_obs::quantile_from_buckets(&self.latency_buckets, q)
    }

    /// Approximate latency quantile over the trailing sliding window
    /// only (see [`StatsSnapshot::window_seconds`]). Returns 0 when the
    /// window is empty.
    pub fn window_latency_quantile_us(&self, q: f64) -> f64 {
        tkdc_obs::quantile_from_buckets(&self.window_latency_buckets, q)
    }
}

// ---------------------------------------------------------------------
// Little-endian primitive helpers over byte buffers.

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| protocol_error("frame payload shorter than declared"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        // INVARIANT: take() returned exactly 4 bytes.
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        // INVARIANT: take() returned exactly 8 bytes.
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finished(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(protocol_error("trailing bytes after frame payload"))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_matrix(out: &mut Vec<u8>, m: &Matrix) -> Result<()> {
    let rows =
        u32::try_from(m.rows()).map_err(|_| protocol_error("batch exceeds u32 row count"))?;
    let cols =
        u32::try_from(m.cols()).map_err(|_| protocol_error("batch exceeds u32 column count"))?;
    put_u32(out, rows);
    put_u32(out, cols);
    for &v in m.as_slice() {
        put_f64(out, v);
    }
    Ok(())
}

fn decode_matrix(c: &mut Cursor<'_>) -> Result<Matrix> {
    let rows = c.u32()? as usize; // CAST: u32 -> usize is lossless on 64-bit targets
    let cols = c.u32()? as usize; // CAST: u32 -> usize is lossless on 64-bit targets
    let cells = rows
        .checked_mul(cols)
        .ok_or_else(|| protocol_error("matrix dimensions overflow"))?;
    // The frame cap already bounds cells·8; re-check before allocating
    // so a lying header cannot outgrow its actual payload.
    if cells
        .checked_mul(8)
        // CAST: MAX_FRAME_BYTES (64 MiB) fits usize on all supported targets
        .is_none_or(|b| b > MAX_FRAME_BYTES as usize)
    {
        return Err(protocol_error("matrix larger than the frame cap"));
    }
    let mut data = Vec::with_capacity(cells);
    for _ in 0..cells {
        data.push(c.f64()?);
    }
    Matrix::from_vec(data, rows, cols)
        .map_err(|e| protocol_error(format!("bad matrix payload: {e}")))
}

// ---------------------------------------------------------------------
// Framing.

/// Writes one frame (`u32 len | version | tag | payload`).
fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> Result<()> {
    let body_len = u32::try_from(payload.len() + 2)
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or_else(|| protocol_error("frame exceeds MAX_FRAME_BYTES"))?;
    let mut frame = Vec::with_capacity(payload.len() + 6);
    put_u32(&mut frame, body_len);
    frame.push(PROTOCOL_VERSION);
    frame.push(tag);
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame body, returning `(version, tag, payload)`. Returns
/// `Ok(None)` on clean EOF at a frame boundary (the peer closed the
/// connection between messages).
fn read_frame(r: &mut impl Read) -> Result<Option<(u8, u8, Vec<u8>)>> {
    let mut len_bytes = [0u8; 4];
    // Distinguish "closed between frames" from "died mid-frame".
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(protocol_error("connection closed mid-frame"));
        }
        filled += n;
    }
    let body_len = u32::from_le_bytes(len_bytes);
    if body_len < 2 {
        return Err(protocol_error("frame too short for version + tag"));
    }
    if body_len > MAX_FRAME_BYTES {
        return Err(protocol_error(format!(
            "frame of {body_len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut body = vec![0u8; body_len as usize]; // CAST: bounded by MAX_FRAME_BYTES
    r.read_exact(&mut body)?;
    let version = body[0];
    let tag = body[1];
    body.drain(..2);
    Ok(Some((version, tag, body)))
}

fn check_version(version: u8) -> Result<()> {
    if version != PROTOCOL_VERSION {
        return Err(protocol_error(format!(
            "unsupported protocol version {version} (this build speaks {PROTOCOL_VERSION})"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Requests.

/// Serializes a request to a writer as one frame.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<()> {
    let mut payload = Vec::new();
    let op = match req {
        Request::Ping { nonce } => {
            put_u64(&mut payload, *nonce);
            OP_PING
        }
        Request::Classify { points } => {
            encode_matrix(&mut payload, points)?;
            OP_CLASSIFY
        }
        Request::Density { points } => {
            encode_matrix(&mut payload, points)?;
            OP_DENSITY
        }
        Request::Stats => OP_STATS,
        Request::Shutdown => OP_SHUTDOWN,
    };
    write_frame(w, op, &payload)
}

/// Reads one request frame. `Ok(None)` means the peer closed cleanly.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>> {
    let Some((version, op, payload)) = read_frame(r)? else {
        return Ok(None);
    };
    check_version(version)?;
    let mut c = Cursor::new(&payload);
    let req = match op {
        OP_PING => Request::Ping { nonce: c.u64()? },
        OP_CLASSIFY => Request::Classify {
            points: decode_matrix(&mut c)?,
        },
        OP_DENSITY => Request::Density {
            points: decode_matrix(&mut c)?,
        },
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        other => return Err(protocol_error(format!("unknown request opcode {other}"))),
    };
    c.finished()?;
    Ok(Some(req))
}

// ---------------------------------------------------------------------
// Responses.

fn encode_snapshot(out: &mut Vec<u8>, s: &StatsSnapshot) -> Result<()> {
    for v in [
        s.requests_total,
        s.errors_total,
        s.pings,
        s.classifies,
        s.densities,
        s.stats_requests,
        s.points_classified,
        s.points_bounded,
        s.rejected_over_capacity,
        s.timeouts,
        s.connections_accepted,
        s.active_connections,
    ] {
        put_u64(out, v);
    }
    let n = u32::try_from(s.latency_buckets.len())
        .map_err(|_| protocol_error("implausible bucket count"))?;
    put_u32(out, n);
    for &(le_us, count) in &s.latency_buckets {
        put_f64(out, le_us);
        put_u64(out, count);
    }
    let n = u32::try_from(s.engine_counters.len())
        .map_err(|_| protocol_error("implausible engine counter count"))?;
    put_u32(out, n);
    for (name, value) in &s.engine_counters {
        let bytes = name.as_bytes();
        let len = u32::try_from(bytes.len())
            .map_err(|_| protocol_error("implausible engine counter name"))?;
        put_u32(out, len);
        out.extend_from_slice(bytes);
        put_u64(out, *value);
    }
    for field in [&s.backend, &s.bound_kind] {
        let bytes = field.as_bytes();
        let len =
            u32::try_from(bytes.len()).map_err(|_| protocol_error("implausible backend tag"))?;
        put_u32(out, len);
        out.extend_from_slice(bytes);
    }
    // v2 tail: the sliding-window latency view.
    let n = u32::try_from(s.window_latency_buckets.len())
        .map_err(|_| protocol_error("implausible window bucket count"))?;
    put_u32(out, n);
    for &(le_us, count) in &s.window_latency_buckets {
        put_f64(out, le_us);
        put_u64(out, count);
    }
    put_u64(out, s.window_seconds);
    Ok(())
}

fn decode_snapshot(c: &mut Cursor<'_>) -> Result<StatsSnapshot> {
    let mut s = StatsSnapshot {
        requests_total: c.u64()?,
        errors_total: c.u64()?,
        pings: c.u64()?,
        classifies: c.u64()?,
        densities: c.u64()?,
        stats_requests: c.u64()?,
        points_classified: c.u64()?,
        points_bounded: c.u64()?,
        rejected_over_capacity: c.u64()?,
        timeouts: c.u64()?,
        connections_accepted: c.u64()?,
        active_connections: c.u64()?,
        latency_buckets: Vec::new(),
        window_latency_buckets: Vec::new(),
        window_seconds: 0,
        engine_counters: Vec::new(),
        backend: String::new(),
        bound_kind: String::new(),
    };
    let n = c.u32()? as usize; // CAST: u32 -> usize is lossless on 64-bit targets
    if n > 4096 {
        return Err(protocol_error(format!("implausible bucket count {n}")));
    }
    s.latency_buckets.reserve(n);
    for _ in 0..n {
        let le_us = c.f64()?;
        let count = c.u64()?;
        s.latency_buckets.push((le_us, count));
    }
    let n = c.u32()? as usize; // CAST: u32 -> usize is lossless on 64-bit targets
    if n > 4096 {
        return Err(protocol_error(format!(
            "implausible engine counter count {n}"
        )));
    }
    s.engine_counters.reserve(n);
    for _ in 0..n {
        let len = c.u32()? as usize; // CAST: u32 -> usize is lossless on 64-bit targets
        if len > 1024 {
            return Err(protocol_error(format!(
                "implausible engine counter name length {len}"
            )));
        }
        let name = String::from_utf8_lossy(c.take(len)?).into_owned();
        let value = c.u64()?;
        s.engine_counters.push((name, value));
    }
    let mut tag = || -> Result<String> {
        let len = c.u32()? as usize; // CAST: u32 -> usize is lossless on 64-bit targets
        if len > 64 {
            return Err(protocol_error(format!(
                "implausible backend tag length {len}"
            )));
        }
        Ok(String::from_utf8_lossy(c.take(len)?).into_owned())
    };
    s.backend = tag()?;
    s.bound_kind = tag()?;
    // v2 tail: the sliding-window latency view.
    let n = c.u32()? as usize; // CAST: u32 -> usize is lossless on 64-bit targets
    if n > 4096 {
        return Err(protocol_error(format!(
            "implausible window bucket count {n}"
        )));
    }
    s.window_latency_buckets.reserve(n);
    for _ in 0..n {
        let le_us = c.f64()?;
        let count = c.u64()?;
        s.window_latency_buckets.push((le_us, count));
    }
    s.window_seconds = c.u64()?;
    Ok(s)
}

/// Status byte of an ok response, by payload shape.
const STATUS_OK: u8 = 0;
/// Sub-tag distinguishing ok payload shapes (first payload byte).
const OK_PONG: u8 = 0;
const OK_LABELS: u8 = 1;
const OK_BOUNDS: u8 = 2;
const OK_STATS: u8 = 3;
const OK_SHUTDOWN_ACK: u8 = 4;

/// Serializes a response to a writer as one frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<()> {
    let mut payload = Vec::new();
    let status = match resp {
        Response::Pong { nonce } => {
            payload.push(OK_PONG);
            put_u64(&mut payload, *nonce);
            STATUS_OK
        }
        Response::Labels(labels) => {
            payload.push(OK_LABELS);
            let n = u32::try_from(labels.len())
                .map_err(|_| protocol_error("batch exceeds u32 label count"))?;
            put_u32(&mut payload, n);
            payload.extend(labels.iter().map(|l| match l {
                Label::Low => 0u8,
                Label::High => 1u8,
                Label::Unknown => 2u8,
            }));
            STATUS_OK
        }
        Response::Bounds(bounds) => {
            payload.push(OK_BOUNDS);
            let n = u32::try_from(bounds.len())
                .map_err(|_| protocol_error("batch exceeds u32 bound count"))?;
            put_u32(&mut payload, n);
            for &(lo, hi) in bounds {
                put_f64(&mut payload, lo);
                put_f64(&mut payload, hi);
            }
            STATUS_OK
        }
        Response::Stats(snapshot) => {
            payload.push(OK_STATS);
            encode_snapshot(&mut payload, snapshot)?;
            STATUS_OK
        }
        Response::ShutdownAck => {
            payload.push(OK_SHUTDOWN_ACK);
            STATUS_OK
        }
        Response::Error { code, message } => {
            let bytes = message.as_bytes();
            let n = u32::try_from(bytes.len().min(u32::MAX as usize)) // CAST: u32::MAX fits usize
                .unwrap_or(u32::MAX);
            put_u32(&mut payload, n);
            payload.extend_from_slice(&bytes[..n as usize]); // CAST: n <= len
            *code as u8
        }
    };
    write_frame(w, status, &payload)
}

/// Reads one response frame. `Ok(None)` means the peer closed cleanly.
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>> {
    let Some((version, status, payload)) = read_frame(r)? else {
        return Ok(None);
    };
    check_version(version)?;
    let mut c = Cursor::new(&payload);
    if status != STATUS_OK {
        let code = ErrorCode::from_u8(status)
            .ok_or_else(|| protocol_error(format!("unknown response status {status}")))?;
        let n = c.u32()? as usize; // CAST: u32 -> usize is lossless on 64-bit targets
        let bytes = c.take(n)?;
        let message = String::from_utf8_lossy(bytes).into_owned();
        c.finished()?;
        return Ok(Some(Response::Error { code, message }));
    }
    let resp = match c.u8()? {
        OK_PONG => Response::Pong { nonce: c.u64()? },
        OK_LABELS => {
            let n = c.u32()? as usize; // CAST: u32 -> usize is lossless on 64-bit targets
            let bytes = c.take(n)?;
            let mut labels = Vec::with_capacity(n);
            for &b in bytes {
                labels.push(match b {
                    0 => Label::Low,
                    1 => Label::High,
                    2 => Label::Unknown,
                    other => return Err(protocol_error(format!("unknown label byte {other}"))),
                });
            }
            Response::Labels(labels)
        }
        OK_BOUNDS => {
            let n = c.u32()? as usize; // CAST: u32 -> usize is lossless on 64-bit targets
            if n.checked_mul(16)
                // CAST: MAX_FRAME_BYTES (64 MiB) fits usize on all supported targets
                .is_none_or(|b| b > MAX_FRAME_BYTES as usize)
            {
                return Err(protocol_error("bounds payload larger than the frame cap"));
            }
            let mut bounds = Vec::with_capacity(n);
            for _ in 0..n {
                let lo = c.f64()?;
                let hi = c.f64()?;
                bounds.push((lo, hi));
            }
            Response::Bounds(bounds)
        }
        OK_STATS => Response::Stats(decode_snapshot(&mut c)?),
        OK_SHUTDOWN_ACK => Response::ShutdownAck,
        other => return Err(protocol_error(format!("unknown ok payload tag {other}"))),
    };
    c.finished()?;
    Ok(Some(resp))
}

/// Converts an error response into a workspace [`Error`] a client can
/// propagate (used by [`crate::Client`]).
pub fn error_response_to_error(code: ErrorCode, message: &str) -> Error {
    protocol_error(format!("server rejected request ({code:?}): {message}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        read_request(&mut buf.as_slice()).unwrap().unwrap()
    }

    fn round_trip_response(resp: Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        read_response(&mut buf.as_slice()).unwrap().unwrap()
    }

    #[test]
    fn requests_round_trip() {
        assert_eq!(
            round_trip_request(Request::Ping { nonce: 0xDEAD }),
            Request::Ping { nonce: 0xDEAD }
        );
        let m = Matrix::from_rows(&[[1.0, 2.0], [3.0, 4.0]]).unwrap();
        assert_eq!(
            round_trip_request(Request::Classify { points: m.clone() }),
            Request::Classify { points: m.clone() }
        );
        assert_eq!(
            round_trip_request(Request::Density { points: m.clone() }),
            Request::Density { points: m }
        );
        assert_eq!(round_trip_request(Request::Stats), Request::Stats);
        assert_eq!(round_trip_request(Request::Shutdown), Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        assert_eq!(
            round_trip_response(Response::Pong { nonce: 7 }),
            Response::Pong { nonce: 7 }
        );
        let labels = vec![Label::High, Label::Low, Label::Unknown, Label::High];
        assert_eq!(
            round_trip_response(Response::Labels(labels.clone())),
            Response::Labels(labels)
        );
        let bounds = vec![(0.5, 1.5), (0.0, f64::INFINITY)];
        assert_eq!(
            round_trip_response(Response::Bounds(bounds.clone())),
            Response::Bounds(bounds)
        );
        assert_eq!(
            round_trip_response(Response::ShutdownAck),
            Response::ShutdownAck
        );
        let err = Response::Error {
            code: ErrorCode::OverCapacity,
            message: "busy".into(),
        };
        assert_eq!(round_trip_response(err.clone()), err);
    }

    #[test]
    fn stats_snapshot_round_trips() {
        let snap = StatsSnapshot {
            requests_total: 10,
            errors_total: 1,
            pings: 2,
            classifies: 3,
            densities: 1,
            stats_requests: 4,
            points_classified: 300,
            points_bounded: 100,
            rejected_over_capacity: 5,
            timeouts: 2,
            connections_accepted: 9,
            active_connections: 3,
            latency_buckets: vec![(1.0, 2), (2.0, 5), (f64::INFINITY, 1)],
            window_latency_buckets: vec![(1.0, 1), (2.0, 2), (f64::INFINITY, 0)],
            window_seconds: 60,
            engine_counters: vec![
                ("engine.queries".to_string(), 400),
                ("engine.kernel_evals".to_string(), 123_456),
            ],
            backend: "hbe".to_string(),
            bound_kind: "probabilistic".to_string(),
        };
        assert_eq!(
            round_trip_response(Response::Stats(snap.clone())),
            Response::Stats(snap)
        );
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
    fn latency_quantiles_from_histogram() {
        let snap = StatsSnapshot {
            latency_buckets: vec![(1.0, 50), (2.0, 40), (4.0, 9), (f64::INFINITY, 1)],
            window_latency_buckets: vec![(1.0, 0), (2.0, 3), (4.0, 1), (f64::INFINITY, 0)],
            ..StatsSnapshot::default()
        };
        assert_eq!(snap.latency_quantile_us(0.5), 1.0);
        assert_eq!(snap.latency_quantile_us(0.9), 2.0);
        assert_eq!(snap.latency_quantile_us(0.99), 4.0);
        assert_eq!(snap.latency_quantile_us(1.0), f64::INFINITY);
        assert_eq!(StatsSnapshot::default().latency_quantile_us(0.5), 0.0);
        // The windowed view quantiles independently of the total.
        assert_eq!(snap.window_latency_quantile_us(0.5), 2.0);
        assert_eq!(snap.window_latency_quantile_us(1.0), 4.0);
        assert_eq!(
            StatsSnapshot::default().window_latency_quantile_us(0.5),
            0.0
        );
    }

    #[test]
    fn clean_eof_is_none_midframe_is_error() {
        assert!(read_request(&mut &b""[..]).unwrap().is_none());
        assert!(read_response(&mut &b""[..]).unwrap().is_none());
        // Partial length prefix: mid-frame death.
        assert!(read_request(&mut &b"\x02"[..]).is_err());
        // Full length prefix, missing body.
        let mut buf = Vec::new();
        put_u32(&mut buf, 10);
        assert!(read_request(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn oversized_and_malformed_frames_rejected() {
        // Oversized length prefix.
        let mut buf = Vec::new();
        put_u32(&mut buf, MAX_FRAME_BYTES + 1);
        buf.extend_from_slice(&[PROTOCOL_VERSION, OP_PING]);
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Unknown opcode.
        let mut buf = Vec::new();
        write_frame(&mut buf, 99, &[]).unwrap();
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Wrong protocol version.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.push(PROTOCOL_VERSION + 1);
        buf.push(OP_STATS);
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Trailing junk after a valid payload.
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_PING, &[0u8; 12]).unwrap();
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Matrix whose header promises more cells than the payload holds.
        let mut payload = Vec::new();
        put_u32(&mut payload, 1000);
        put_u32(&mut payload, 1000);
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_CLASSIFY, &payload).unwrap();
        assert!(read_request(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn error_code_round_trips() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::UnsupportedVersion,
            ErrorCode::OverCapacity,
            ErrorCode::BadInput,
            ErrorCode::Internal,
            ErrorCode::TooLarge,
            ErrorCode::Timeout,
            ErrorCode::ShuttingDown,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(99), None);
    }
}
