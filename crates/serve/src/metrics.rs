//! Lock-free server metrics, built on the shared `tkdc-obs` primitives.
//!
//! Every counter is a relaxed-atomic [`Counter`] (the open-connection
//! count is a [`Gauge`]): handlers on different connections update them
//! concurrently without coordination, and [`Metrics::snapshot`] reads a
//! (possibly slightly torn across counters, individually exact)
//! point-in-time copy. Request latency is tracked in a log-scale
//! [`WindowedHistogram`]: the cumulative view counts every request since
//! startup (bucket `i` counts requests whose latency was at most `2^i`
//! microseconds), while the sliding-window view covers only the most
//! recent [`DEFAULT_WINDOW_SLOTS`] × [`DEFAULT_SLOT_MILLIS`] of traffic —
//! so a `Stats` snapshot answers both "p99 since boot" and "p99 right
//! now" with zero allocation on the hot path.
//!
//! The server additionally folds every answered batch's [`QueryStats`]
//! into an engine-counter [`Registry`] (names `engine.queries`,
//! `engine.kernel_evals`, …, one per [`QueryStats::named_counters`]
//! entry) plus the classify label mix (`labels.high` / `labels.low` /
//! `labels.unknown`, the UNKNOWN share being the served abstention
//! rate), so the pruning engine's work mix travels in the same `Stats`
//! wire frame as the transport counters — one reporting path for both
//! layers.

use std::time::Duration;

use tkdc_sync::Arc;

use tkdc::{Label, QueryStats};
use tkdc_obs::{
    Counter, Gauge, Registry, RegistrySnapshot, WindowedHistogram, DEFAULT_SLOT_MILLIS,
    DEFAULT_WINDOW_SLOTS,
};

use crate::protocol::StatsSnapshot;

/// Shared, lock-free server metrics (see module docs).
#[derive(Debug)]
pub struct Metrics {
    /// Requests decoded and answered (any type, ok or error).
    pub requests_total: Counter,
    /// Requests answered with an error response.
    pub errors_total: Counter,
    /// `Ping` requests answered.
    pub pings: Counter,
    /// `Classify` requests answered.
    pub classifies: Counter,
    /// `Density` requests answered.
    pub densities: Counter,
    /// `Stats` requests answered.
    pub stats_requests: Counter,
    /// Total query points classified across all `Classify` batches.
    pub points_classified: Counter,
    /// Total query points bounded across all `Density` batches.
    pub points_bounded: Counter,
    /// Connections turned away at the connection cap.
    pub rejected_over_capacity: Counter,
    /// Connections closed by the read/write timeout.
    pub timeouts: Counter,
    /// Connections accepted since startup.
    pub connections_accepted: Counter,
    /// Connections currently open.
    pub active_connections: Gauge,
    latency: WindowedHistogram,
    engine: Registry,
    /// Hot-path handles into `engine`, pre-registered in
    /// [`QueryStats::named_counters`] order so folding a batch's stats
    /// is nine relaxed adds, no name lookups.
    engine_counters: Vec<(&'static str, Arc<Counter>)>,
    /// Classify label mix, `[high, low, unknown]`, registered in the
    /// same engine registry (names `labels.*`).
    label_counters: [Arc<Counter>; 3],
}

impl Default for Metrics {
    fn default() -> Self {
        let engine = Registry::new();
        // Pre-register every engine counter at zero so snapshots carry
        // the full name set even before the first query.
        let engine_counters: Vec<_> = QueryStats::default()
            .named_counters()
            .iter()
            .map(|&(name, _)| (name, engine.counter(&format!("engine.{name}"))))
            .collect();
        let label_counters = [
            engine.counter("labels.high"),
            engine.counter("labels.low"),
            engine.counter("labels.unknown"),
        ];
        Self {
            requests_total: Counter::new(),
            errors_total: Counter::new(),
            pings: Counter::new(),
            classifies: Counter::new(),
            densities: Counter::new(),
            stats_requests: Counter::new(),
            points_classified: Counter::new(),
            points_bounded: Counter::new(),
            rejected_over_capacity: Counter::new(),
            timeouts: Counter::new(),
            connections_accepted: Counter::new(),
            active_connections: Gauge::new(),
            latency: WindowedHistogram::new(DEFAULT_WINDOW_SLOTS, DEFAULT_SLOT_MILLIS),
            engine,
            engine_counters,
            label_counters,
        }
    }
}

impl Metrics {
    /// Creates a zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request's wall-clock latency (both the
    /// cumulative and the sliding-window view).
    pub fn record_latency(&self, latency: Duration) {
        self.latency.record(latency);
    }

    /// Folds one answered batch's merged engine statistics into the
    /// engine-counter registry.
    pub fn record_query_stats(&self, stats: &QueryStats) {
        for ((name, counter), (stat_name, value)) in
            self.engine_counters.iter().zip(stats.named_counters())
        {
            debug_assert_eq!(*name, stat_name, "registration order drifted");
            counter.add(value);
        }
    }

    /// Folds one answered batch's label mix into the `labels.*`
    /// counters (the UNKNOWN share is the served abstention rate).
    pub fn record_labels(&self, labels: &[Label]) {
        let (mut high, mut low, mut unknown) = (0u64, 0u64, 0u64);
        for l in labels {
            match l {
                Label::High => high += 1,
                Label::Low => low += 1,
                Label::Unknown => unknown += 1,
            }
        }
        self.label_counters[0].add(high);
        self.label_counters[1].add(low);
        self.label_counters[2].add(unknown);
    }

    /// Point-in-time copy of the engine-counter registry (engine work
    /// mix plus label counts), for the Prometheus exposition.
    pub fn engine_snapshot(&self) -> RegistrySnapshot {
        self.engine.snapshot()
    }

    /// Cumulative request-latency buckets (`(upper_us, count)`).
    pub fn latency_buckets(&self) -> Vec<(f64, u64)> {
        self.latency.total_buckets()
    }

    /// Sliding-window request-latency buckets (`(upper_us, count)`).
    pub fn window_latency_buckets(&self) -> Vec<(f64, u64)> {
        self.latency.window_buckets()
    }

    /// Width of the sliding latency window, in seconds.
    pub fn window_seconds(&self) -> u64 {
        self.latency.window_seconds()
    }

    /// Point-in-time copy for the `Stats` response. Latency bucket upper
    /// bounds are encoded explicitly so clients need no knowledge of the
    /// histogram's base, and engine counters travel as `(name, value)`
    /// pairs so new counters never change the frame layout.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests_total: self.requests_total.get(),
            errors_total: self.errors_total.get(),
            pings: self.pings.get(),
            classifies: self.classifies.get(),
            densities: self.densities.get(),
            stats_requests: self.stats_requests.get(),
            points_classified: self.points_classified.get(),
            points_bounded: self.points_bounded.get(),
            rejected_over_capacity: self.rejected_over_capacity.get(),
            timeouts: self.timeouts.get(),
            connections_accepted: self.connections_accepted.get(),
            active_connections: self.active_connections.get(),
            latency_buckets: self.latency.total_buckets(),
            window_latency_buckets: self.latency.window_buckets(),
            window_seconds: self.latency.window_seconds(),
            engine_counters: self.engine.snapshot().counters,
            // The metrics block has no model handle; the server stamps
            // backend provenance onto the snapshot before encoding.
            backend: String::new(),
            bound_kind: String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_obs::HISTOGRAM_BUCKETS;

    #[test]
    fn snapshot_reflects_recorded_latencies() {
        let m = Metrics::new();
        m.record_latency(Duration::from_micros(1));
        m.record_latency(Duration::from_micros(3));
        m.record_latency(Duration::from_micros(3));
        m.requests_total.inc();
        m.points_classified.add(42);
        let snap = m.snapshot();
        assert_eq!(snap.requests_total, 1);
        assert_eq!(snap.points_classified, 42);
        assert_eq!(snap.latency_buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(snap.latency_buckets[0], (1.0, 1));
        assert_eq!(snap.latency_buckets[2], (4.0, 2));
        let total: u64 = snap.latency_buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3);
        assert!(snap.latency_buckets.last().unwrap().0.is_infinite());
        // All three recordings are inside the (fresh) sliding window.
        let windowed: u64 = snap.window_latency_buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(windowed, 3);
        assert!(snap.window_seconds >= 1);
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
    fn quantiles_from_snapshot() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record_latency(Duration::from_micros(2));
        }
        m.record_latency(Duration::from_micros(1000));
        let snap = m.snapshot();
        assert_eq!(snap.latency_quantile_us(0.5), 2.0);
        assert_eq!(snap.latency_quantile_us(0.99), 2.0);
        assert_eq!(snap.latency_quantile_us(1.0), 1024.0);
        // The fresh window holds the same traffic as the total.
        assert_eq!(snap.window_latency_quantile_us(0.5), 2.0);
        assert_eq!(snap.window_latency_quantile_us(1.0), 1024.0);
    }

    #[test]
    fn engine_counters_fold_query_stats() {
        let m = Metrics::new();
        // Even a fresh block snapshots the full engine-counter name set
        // plus the three label-mix counters.
        let names: Vec<String> = m
            .snapshot()
            .engine_counters
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        let engine_names = QueryStats::default().named_counters().len();
        assert_eq!(names.len(), engine_names + 3);
        assert!(names
            .iter()
            .all(|n| n.starts_with("engine.") || n.starts_with("labels.")));
        let stats = QueryStats {
            queries: 3,
            kernel_evals: 120,
            nodes_expanded: 17,
            bound_evals: 40,
            threshold_high: 2,
            tolerance: 1,
            ..Default::default()
        };
        m.record_query_stats(&stats);
        m.record_query_stats(&stats);
        let snap = m.snapshot();
        let get = |name: &str| {
            snap.engine_counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert_eq!(get("engine.queries"), 6);
        assert_eq!(get("engine.kernel_evals"), 240);
        assert_eq!(get("engine.threshold_high"), 4);
        assert_eq!(get("engine.grid_prunes"), 0);
    }

    #[test]
    fn label_mix_counts_every_label() {
        let m = Metrics::new();
        m.record_labels(&[Label::High, Label::High, Label::Low, Label::Unknown]);
        m.record_labels(&[Label::Unknown]);
        let snap = m.snapshot();
        let get = |name: &str| {
            snap.engine_counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert_eq!(get("labels.high"), 2);
        assert_eq!(get("labels.low"), 1);
        assert_eq!(get("labels.unknown"), 2);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let m = Arc::new(Metrics::new());
        tkdc_sync::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.requests_total.inc();
                        m.record_latency(Duration::from_micros(5));
                        m.record_query_stats(&QueryStats {
                            queries: 1,
                            kernel_evals: 2,
                            ..Default::default()
                        });
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.requests_total, 4000);
        let total: u64 = snap.latency_buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4000);
        let kernels = snap
            .engine_counters
            .iter()
            .find(|(n, _)| n == "engine.kernel_evals")
            .map(|&(_, v)| v)
            .unwrap();
        assert_eq!(kernels, 8000);
    }
}
