//! Lock-free server metrics.
//!
//! Every counter is a relaxed [`AtomicU64`]: handlers on different
//! connections update them concurrently without coordination, and
//! [`Metrics::snapshot`] reads a (possibly slightly torn across
//! counters, individually exact) point-in-time copy. Request latency is
//! tracked in a log-scale histogram — bucket `i` counts requests whose
//! latency was at most `2^i` microseconds — so a snapshot supports
//! approximate p50/p99 queries with bounded relative error and zero
//! allocation on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::protocol::StatsSnapshot;

/// Number of latency buckets: `2^0 .. 2^30` microseconds (~17 minutes)
/// plus a final overflow bucket.
const BUCKETS: usize = 32;

/// Shared, lock-free server metrics (see module docs).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests decoded and answered (any type, ok or error).
    pub requests_total: AtomicU64,
    /// Requests answered with an error response.
    pub errors_total: AtomicU64,
    /// `Ping` requests answered.
    pub pings: AtomicU64,
    /// `Classify` requests answered.
    pub classifies: AtomicU64,
    /// `Density` requests answered.
    pub densities: AtomicU64,
    /// `Stats` requests answered.
    pub stats_requests: AtomicU64,
    /// Total query points classified across all `Classify` batches.
    pub points_classified: AtomicU64,
    /// Total query points bounded across all `Density` batches.
    pub points_bounded: AtomicU64,
    /// Connections turned away at the connection cap.
    pub rejected_over_capacity: AtomicU64,
    /// Connections closed by the read/write timeout.
    pub timeouts: AtomicU64,
    /// Connections accepted since startup.
    pub connections_accepted: AtomicU64,
    /// Connections currently open.
    pub active_connections: AtomicU64,
    latency: LatencyHistogram,
}

#[derive(Debug)]
struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Bucket index for a latency: smallest `i` with `us <= 2^i`
    /// (bucket 0 covers 0..=1 µs); the last bucket absorbs overflow.
    fn bucket(us: u128) -> usize {
        let us = us.max(1);
        let i = 128 - us.leading_zeros() as usize - 1; // CAST: < 128
        let i = if us.is_power_of_two() { i } else { i + 1 };
        i.min(BUCKETS - 1)
    }

    fn record(&self, latency: Duration) {
        let i = Self::bucket(latency.as_micros());
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }
}

impl Metrics {
    /// Creates a zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served request's wall-clock latency.
    pub fn record_latency(&self, latency: Duration) {
        self.latency.record(latency);
    }

    /// Point-in-time copy for the `Stats` response. Bucket upper bounds
    /// are encoded explicitly so clients need no knowledge of the
    /// histogram's base.
    pub fn snapshot(&self) -> StatsSnapshot {
        let ld = Ordering::Relaxed;
        let latency_buckets = self
            .latency
            .counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let le_us = if i == BUCKETS - 1 {
                    f64::INFINITY
                } else {
                    (1u64 << i) as f64 // CAST: i < 63, exact in f64
                };
                (le_us, c.load(ld))
            })
            .collect();
        StatsSnapshot {
            requests_total: self.requests_total.load(ld),
            errors_total: self.errors_total.load(ld),
            pings: self.pings.load(ld),
            classifies: self.classifies.load(ld),
            densities: self.densities.load(ld),
            stats_requests: self.stats_requests.load(ld),
            points_classified: self.points_classified.load(ld),
            points_bounded: self.points_bounded.load(ld),
            rejected_over_capacity: self.rejected_over_capacity.load(ld),
            timeouts: self.timeouts.load(ld),
            connections_accepted: self.connections_accepted.load(ld),
            active_connections: self.active_connections.load(ld),
            latency_buckets,
        }
    }
}

/// Convenience: relaxed increment, the only ordering metrics need.
pub(crate) fn inc(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Convenience: relaxed add.
pub(crate) fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 0);
        assert_eq!(LatencyHistogram::bucket(2), 1);
        assert_eq!(LatencyHistogram::bucket(3), 2);
        assert_eq!(LatencyHistogram::bucket(4), 2);
        assert_eq!(LatencyHistogram::bucket(5), 3);
        assert_eq!(LatencyHistogram::bucket(1024), 10);
        assert_eq!(LatencyHistogram::bucket(1025), 11);
        assert_eq!(LatencyHistogram::bucket(u128::MAX), BUCKETS - 1);
    }

    #[test]
    fn snapshot_reflects_recorded_latencies() {
        let m = Metrics::new();
        m.record_latency(Duration::from_micros(1));
        m.record_latency(Duration::from_micros(3));
        m.record_latency(Duration::from_micros(3));
        inc(&m.requests_total);
        add(&m.points_classified, 42);
        let snap = m.snapshot();
        assert_eq!(snap.requests_total, 1);
        assert_eq!(snap.points_classified, 42);
        assert_eq!(snap.latency_buckets.len(), BUCKETS);
        assert_eq!(snap.latency_buckets[0], (1.0, 1));
        assert_eq!(snap.latency_buckets[2], (4.0, 2));
        let total: u64 = snap.latency_buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3);
        assert!(snap.latency_buckets.last().unwrap().0.is_infinite());
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
    fn quantiles_from_snapshot() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record_latency(Duration::from_micros(2));
        }
        m.record_latency(Duration::from_micros(1000));
        let snap = m.snapshot();
        assert_eq!(snap.latency_quantile_us(0.5), 2.0);
        assert_eq!(snap.latency_quantile_us(0.99), 2.0);
        assert_eq!(snap.latency_quantile_us(1.0), 1024.0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let m = std::sync::Arc::new(Metrics::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        inc(&m.requests_total);
                        m.record_latency(Duration::from_micros(5));
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.requests_total, 4000);
        let total: u64 = snap.latency_buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4000);
    }
}
