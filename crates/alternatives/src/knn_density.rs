//! k-nearest-neighbor density estimation (Loftsgaarden & Quesenberry
//! 1965; the "kNN" non-parametric alternative of §1/§2.4 of the tKDC
//! paper).
//!
//! `f̂(x) = k / (n · V_d · r_k(x)^d)` where `r_k` is the distance to the
//! k-th neighbor and `V_d` the unit-ball volume. Unlike KDE the estimate
//! is not smooth (it has kinks at neighbor transitions) and does not
//! integrate to one — the "do not provide smooth, normalized probability
//! distributions" limitation the paper quotes from Silverman.

use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::order::ln_gamma;
use tkdc_common::Matrix;
use tkdc_index::{k_nearest, KdTree, SplitRule};

/// Fitted kNN density estimator.
#[derive(Debug)]
pub struct KnnDensity {
    tree: KdTree,
    k: usize,
    /// log of the unit-ball volume V_d.
    ln_unit_ball: f64,
    dim: usize,
    /// Unit per-axis scales (kNN density uses plain Euclidean distance);
    /// prebuilt so `density` allocates nothing per query.
    unit_scales: Vec<f64>,
}

impl KnnDensity {
    /// Fits the estimator (plain Euclidean distances — kNN density is
    /// scale-sensitive by definition).
    ///
    /// # Errors
    /// Fails on empty data or `k` outside `1..n`.
    pub fn fit(data: &Matrix, k: usize) -> Result<Self> {
        if data.rows() == 0 {
            return Err(Error::EmptyInput("kNN density training data"));
        }
        if k == 0 || k >= data.rows() {
            return Err(invalid_param(
                "k",
                format!("must be in 1..n={}, got {k}", data.rows()),
            ));
        }
        let d = data.cols() as f64;
        // ln V_d = (d/2) ln π − ln Γ(d/2 + 1)
        let ln_unit_ball = d / 2.0 * std::f64::consts::PI.ln() - ln_gamma(d / 2.0 + 1.0);
        Ok(Self {
            tree: KdTree::build(data, 16, SplitRule::Median)?,
            k,
            ln_unit_ball,
            dim: data.cols(),
            unit_scales: vec![1.0; data.cols()],
        })
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: x.len(),
            });
        }
        let hits = k_nearest(&self.tree, x, &self.unit_scales, self.k, false);
        let r = hits
            .last()
            .map(|h| h.sq_dist.sqrt())
            .unwrap_or(f64::INFINITY);
        // r is a distance (≥ 0), so `<= 0.0` is the exact-coincidence
        // test without a bit-exact float compare.
        if r <= 0.0 {
            // k-th neighbor coincides with x (duplicates): density is
            // unbounded at this point; report infinity honestly.
            return Ok(f64::INFINITY);
        }
        let n = self.tree.len() as f64;
        let ln_f = (self.k as f64 / n).ln() - self.ln_unit_ball - self.dim as f64 * r.ln();
        Ok(ln_f.exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::{special, Rng};

    fn blob(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.standard_normal();
            }
            m.push_row(&row).unwrap();
        }
        m
    }

    #[test]
    fn tracks_true_gaussian_density_1d() {
        let data = blob(20_000, 1, 1);
        let est = KnnDensity::fit(&data, 50).unwrap();
        for &x in &[0.0, 0.5, 1.0, 2.0] {
            let measured = est.density(&[x]).unwrap();
            let truth = special::normal_pdf(x);
            assert!(
                (measured - truth).abs() < 0.15 * truth + 0.01,
                "at {x}: {measured} vs {truth}"
            );
        }
    }

    #[test]
    fn density_decreases_into_the_tail() {
        let data = blob(5_000, 2, 3);
        let est = KnnDensity::fit(&data, 20).unwrap();
        let center = est.density(&[0.0, 0.0]).unwrap();
        let shoulder = est.density(&[1.5, 1.5]).unwrap();
        let tail = est.density(&[5.0, 5.0]).unwrap();
        assert!(center > shoulder && shoulder > tail);
    }

    #[test]
    fn duplicates_yield_infinite_density() {
        let mut m = Matrix::with_cols(1);
        for _ in 0..10 {
            m.push_row(&[2.0]).unwrap();
        }
        m.push_row(&[5.0]).unwrap();
        let est = KnnDensity::fit(&m, 3).unwrap();
        assert!(est.density(&[2.0]).unwrap().is_infinite());
        assert!(est.density(&[5.0]).unwrap().is_finite());
    }

    #[test]
    fn rejects_bad_inputs() {
        let data = blob(20, 2, 5);
        assert!(KnnDensity::fit(&data, 0).is_err());
        assert!(KnnDensity::fit(&data, 20).is_err());
        let est = KnnDensity::fit(&data, 3).unwrap();
        assert!(est.density(&[1.0]).is_err());
    }
}
