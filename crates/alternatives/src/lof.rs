//! Local Outlier Factor (Breunig, Kriegel, Ng & Sander, SIGMOD 2000 —
//! reference [8] of the tKDC paper).
//!
//! LOF compares each point's local reachability density to that of its
//! neighbors: scores near 1 mean "as dense as the neighborhood", scores
//! well above 1 mean "locally sparse" (outlier). Like the kNN score, LOF
//! is not a probability density — its values have no absolute statistical
//! meaning, which is §5's interpretability argument for KDE.

use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::Matrix;
use tkdc_index::{k_nearest, KdTree, SplitRule};

/// Fitted LOF model over a training set.
#[derive(Debug)]
pub struct LofModel {
    tree: KdTree,
    inv_h: Vec<f64>,
    k: usize,
    /// k-distance of each training row (tree order).
    k_dist: Vec<f64>,
    /// Local reachability density of each training row (tree order).
    lrd: Vec<f64>,
    /// LOF scores of the training rows, memoized at fit time.
    training_lof: Vec<f64>,
}

impl LofModel {
    /// Fits LOF with neighborhood size `k` (commonly 10–50).
    ///
    /// # Errors
    /// Fails on empty data or `k` outside `1..n`.
    pub fn fit(data: &Matrix, k: usize) -> Result<Self> {
        if data.rows() == 0 {
            return Err(Error::EmptyInput("LOF training data"));
        }
        if k == 0 || k >= data.rows() {
            return Err(invalid_param(
                "k",
                format!("must be in 1..n={}, got {k}", data.rows()),
            ));
        }
        let stds = tkdc_common::stats::column_stds(data);
        let inv_h = crate::util::inv_scales_from_stds(&stds);
        let tree = KdTree::build(data, 16, SplitRule::Median)?;
        let n = tree.len();

        // Pass 1: neighbor lists and k-distances.
        let points: Vec<&[f64]> = tree.node_points(tree.root()).collect();
        let mut neighbors: Vec<Vec<tkdc_index::Neighbor>> = Vec::with_capacity(n);
        let mut k_dist = vec![0.0f64; n];
        for (row, p) in points.iter().enumerate() {
            let hits = k_nearest(&tree, p, &inv_h, k, true);
            k_dist[row] = hits.last().map(|h| h.sq_dist.sqrt()).unwrap_or(0.0);
            neighbors.push(hits);
        }

        // Pass 2: local reachability density
        // lrd(p) = 1 / mean_{o ∈ N_k(p)} reach-dist_k(p, o)
        // reach-dist_k(p, o) = max(k-distance(o), dist(p, o)).
        let mut lrd = vec![0.0f64; n];
        for row in 0..n {
            let mut acc = 0.0;
            for h in &neighbors[row] {
                let dist = h.sq_dist.sqrt();
                acc += dist.max(k_dist[h.row]);
            }
            let count = neighbors[row].len().max(1) as f64;
            let mean_reach = acc / count;
            // Duplicate-heavy neighborhoods can make mean_reach zero;
            // treat them as maximally dense.
            lrd[row] = if mean_reach > 0.0 {
                1.0 / mean_reach
            } else {
                f64::INFINITY
            };
        }

        // Pass 3: training LOF scores directly from the neighbor lists —
        // fit already did the expensive traversals, so training_scores
        // should not redo them.
        let mut training_lof = vec![1.0f64; n];
        for row in 0..n {
            let hits = &neighbors[row];
            if hits.is_empty() {
                continue;
            }
            let mean_neighbor_lrd: f64 =
                hits.iter().map(|h| lrd[h.row]).sum::<f64>() / hits.len() as f64;
            training_lof[row] = if lrd[row].is_infinite() {
                if mean_neighbor_lrd.is_infinite() {
                    1.0
                } else {
                    // Maximally dense point among finite-density
                    // neighbors: locally denser than its neighborhood.
                    0.0
                }
            } else if mean_neighbor_lrd.is_infinite() {
                f64::INFINITY
            } else {
                mean_neighbor_lrd / lrd[row]
            };
        }

        Ok(Self {
            tree,
            inv_h,
            k,
            k_dist,
            lrd,
            training_lof,
        })
    }

    /// LOF score of a query point against the training set: the ratio of
    /// the neighbors' mean lrd to the query's own lrd. ≈1 for inliers,
    /// ≫1 for outliers.
    pub fn score(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.tree.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.tree.dim(),
                actual: x.len(),
            });
        }
        let hits = k_nearest(&self.tree, x, &self.inv_h, self.k, true);
        if hits.is_empty() {
            return Ok(1.0);
        }
        let mut reach_acc = 0.0;
        let mut lrd_acc = 0.0;
        for h in &hits {
            let dist = h.sq_dist.sqrt();
            reach_acc += dist.max(self.k_dist[h.row]);
            lrd_acc += self.lrd[h.row];
        }
        let count = hits.len() as f64;
        let mean_reach = reach_acc / count;
        // Reach distances are ≥ 0, so `<= 0.0` means all-zero without a
        // bit-exact float compare.
        if mean_reach <= 0.0 {
            // Query coincides with a dense cluster of duplicates.
            return Ok(1.0);
        }
        let own_lrd = 1.0 / mean_reach;
        let mean_neighbor_lrd = lrd_acc / count;
        if mean_neighbor_lrd.is_infinite() {
            return Ok(f64::INFINITY);
        }
        Ok(mean_neighbor_lrd / own_lrd)
    }

    /// LOF scores of the training points themselves (tree row order),
    /// memoized during [`Self::fit`] — no additional traversals.
    pub fn training_scores(&self) -> Vec<f64> {
        self.training_lof.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::Rng;

    /// Two clusters of different densities plus one isolated point — the
    /// scenario LOF was designed for (a global kNN threshold struggles
    /// with mixed densities; LOF normalizes locally).
    fn mixed_density_data(seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(2);
        for _ in 0..200 {
            m.push_row(&[rng.normal(0.0, 0.2), rng.normal(0.0, 0.2)])
                .unwrap();
        }
        for _ in 0..200 {
            m.push_row(&[rng.normal(10.0, 2.0), rng.normal(10.0, 2.0)])
                .unwrap();
        }
        m.push_row(&[5.0, 5.0]).unwrap(); // isolated between clusters
        m
    }

    #[test]
    fn isolated_point_scores_high() {
        let data = mixed_density_data(1);
        let lof = LofModel::fit(&data, 10).unwrap();
        let outlier = lof.score(&[5.0, 5.0]).unwrap();
        let tight_inlier = lof.score(&[0.0, 0.0]).unwrap();
        let loose_inlier = lof.score(&[10.0, 10.0]).unwrap();
        assert!(outlier > 2.0, "outlier LOF {outlier}");
        assert!(tight_inlier < 1.5, "tight inlier LOF {tight_inlier}");
        assert!(loose_inlier < 1.5, "loose inlier LOF {loose_inlier}");
    }

    #[test]
    fn inliers_score_near_one() {
        let data = mixed_density_data(3);
        let lof = LofModel::fit(&data, 10).unwrap();
        let scores = lof.training_scores();
        let near_one = scores.iter().filter(|s| (0.7..1.5).contains(*s)).count();
        assert!(
            near_one as f64 / scores.len() as f64 > 0.9,
            "most training points should have LOF ≈ 1"
        );
    }

    #[test]
    fn handles_duplicates() {
        let mut m = Matrix::with_cols(2);
        for _ in 0..50 {
            m.push_row(&[1.0, 1.0]).unwrap();
        }
        let mut rng = Rng::seed_from(5);
        for _ in 0..50 {
            m.push_row(&[rng.normal(5.0, 1.0), rng.normal(5.0, 1.0)])
                .unwrap();
        }
        let lof = LofModel::fit(&m, 5).unwrap();
        // Scores must be finite-or-inf, never NaN.
        for s in lof.training_scores() {
            assert!(!s.is_nan());
        }
        assert!(!lof.score(&[1.0, 1.0]).unwrap().is_nan());
    }

    #[test]
    fn rejects_bad_inputs() {
        let data = mixed_density_data(7);
        assert!(LofModel::fit(&data, 0).is_err());
        assert!(LofModel::fit(&data, data.rows()).is_err());
        let lof = LofModel::fit(&data, 5).unwrap();
        assert!(lof.score(&[1.0]).is_err());
    }
}
