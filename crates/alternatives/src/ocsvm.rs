//! One-class support vector machine (Schölkopf et al., Neural
//! Computation 2001 — reference [48] of the tKDC paper).
//!
//! Estimates the support of a distribution by separating the data from
//! the origin in RBF feature space. The ν parameter upper-bounds the
//! fraction of training points outside the estimated support (analogous
//! to the paper's classification rate `p`).
//!
//! Solved with a maximal-violating-pair SMO over the dual
//!
//! ```text
//! min  ½ Σᵢⱼ αᵢ αⱼ K(xᵢ, xⱼ)   s.t.  0 ≤ αᵢ ≤ 1/(νn),  Σ αᵢ = 1
//! ```
//!
//! with a dense precomputed kernel matrix — O(n²) memory and
//! O(n²)–O(n³) time, which is precisely why §5 of the paper dismisses
//! OCSVM for large-n density classification ("even slower than
//! evaluating KDE"); the `related_work` harness measures that claim.

use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::Matrix;

/// One-class SVM hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct SvmParams {
    /// Upper bound on the training-outlier fraction (and lower bound on
    /// the support-vector fraction). Typical: 0.01–0.5.
    pub nu: f64,
    /// RBF kernel coefficient; `None` uses the "scale" heuristic
    /// `1 / (d · mean per-column variance)`.
    pub gamma: Option<f64>,
    /// KKT violation tolerance for convergence.
    pub tol: f64,
    /// Hard cap on SMO iterations.
    pub max_iter: usize,
}

impl Default for SvmParams {
    fn default() -> Self {
        Self {
            nu: 0.1,
            gamma: None,
            tol: 1e-4,
            max_iter: 100_000,
        }
    }
}

/// A trained one-class SVM.
#[derive(Debug)]
pub struct OneClassSvm {
    /// Support vectors (rows).
    support: Matrix,
    /// Dual coefficients of the support vectors.
    alpha: Vec<f64>,
    /// Decision offset.
    rho: f64,
    gamma: f64,
    /// SMO iterations performed (diagnostics).
    iterations: usize,
}

impl OneClassSvm {
    /// Trains on the dataset. O(n²) memory, superquadratic time.
    ///
    /// # Errors
    /// Fails on empty data, `nu` outside `(0, 1]`, or non-positive
    /// `gamma`/`tol`.
    pub fn fit(data: &Matrix, params: &SvmParams) -> Result<Self> {
        let n = data.rows();
        if n == 0 {
            return Err(Error::EmptyInput("one-class SVM training data"));
        }
        if !params.nu.is_finite() || params.nu <= 0.0 || params.nu > 1.0 {
            return Err(invalid_param("nu", "must be in (0, 1]"));
        }
        if !params.tol.is_finite() || params.tol <= 0.0 {
            return Err(invalid_param("tol", "must be positive"));
        }
        let gamma = match params.gamma {
            Some(g) if g.is_finite() && g > 0.0 => g,
            Some(g) => {
                return Err(invalid_param("gamma", format!("must be positive, got {g}")));
            }
            None => {
                // sklearn's "scale": 1 / (d · mean variance).
                let stds = tkdc_common::stats::column_stds(data);
                let mean_var: f64 =
                    stds.iter().map(|s| s * s).sum::<f64>() / stds.len().max(1) as f64;
                if mean_var > 0.0 {
                    1.0 / (data.cols() as f64 * mean_var)
                } else {
                    1.0
                }
            }
        };

        // Dense kernel matrix (the O(n²) wall the paper cites).
        let mut kmat = vec![0.0f64; n * n];
        for i in 0..n {
            kmat[i * n + i] = 1.0;
            for j in (i + 1)..n {
                let v = rbf(data.row(i), data.row(j), gamma);
                kmat[i * n + j] = v;
                kmat[j * n + i] = v;
            }
        }

        // LIBSVM-style initialization: the first ⌊νn⌋ points carry the
        // upper-bound weight, the next carries the remainder.
        let c = 1.0 / (params.nu * n as f64);
        let mut alpha = vec![0.0f64; n];
        let mut remaining = 1.0f64;
        for a in alpha.iter_mut() {
            let take = remaining.min(c);
            *a = take;
            remaining -= take;
            if remaining <= 0.0 {
                break;
            }
        }

        // Gradient g_i = Σ_j α_j K_ij.
        let mut grad = vec![0.0f64; n];
        for i in 0..n {
            let row = &kmat[i * n..(i + 1) * n];
            grad[i] = row
                .iter()
                .zip(&alpha)
                .filter(|(_, &a)| a > 0.0)
                .map(|(&k, &a)| k * a)
                .sum();
        }

        // Maximal-violating-pair SMO.
        let mut iterations = 0usize;
        while iterations < params.max_iter {
            // i: smallest gradient among α_i < C (can grow);
            // j: largest gradient among α_j > 0 (can shrink).
            let mut i_best = usize::MAX;
            let mut g_min = f64::INFINITY;
            let mut j_best = usize::MAX;
            let mut g_max = f64::NEG_INFINITY;
            for t in 0..n {
                if alpha[t] < c - 1e-15 && grad[t] < g_min {
                    g_min = grad[t];
                    i_best = t;
                }
                if alpha[t] > 1e-15 && grad[t] > g_max {
                    g_max = grad[t];
                    j_best = t;
                }
            }
            if i_best == usize::MAX || j_best == usize::MAX || g_max - g_min < params.tol {
                break;
            }
            let (i, j) = (i_best, j_best);
            // Optimal unconstrained step along (e_i − e_j).
            let kii = kmat[i * n + i];
            let kjj = kmat[j * n + j];
            let kij = kmat[i * n + j];
            let curvature = (kii + kjj - 2.0 * kij).max(1e-12);
            let mut delta = (grad[j] - grad[i]) / curvature;
            // Box constraints: α_i + δ ≤ C, α_j − δ ≥ 0.
            delta = delta.min(c - alpha[i]).min(alpha[j]);
            if delta <= 0.0 {
                break;
            }
            alpha[i] += delta;
            alpha[j] -= delta;
            // Gradient update: g += δ (K_i − K_j).
            let (ri, rj) = (i * n, j * n);
            for t in 0..n {
                grad[t] += delta * (kmat[ri + t] - kmat[rj + t]);
            }
            iterations += 1;
        }

        // ρ from free support vectors (0 < α < C): f(x_i)=0 ⇒ ρ = g_i.
        let mut rho_acc = 0.0;
        let mut rho_cnt = 0usize;
        for t in 0..n {
            if alpha[t] > 1e-12 && alpha[t] < c - 1e-12 {
                rho_acc += grad[t];
                rho_cnt += 1;
            }
        }
        let rho = if rho_cnt > 0 {
            rho_acc / rho_cnt as f64
        } else {
            // No free SVs: midpoint of the active bounds.
            let ub = grad
                .iter()
                .zip(&alpha)
                .filter(|(_, &a)| a >= c - 1e-12)
                .map(|(&g, _)| g)
                .fold(f64::NEG_INFINITY, f64::max);
            let lb = grad
                .iter()
                .zip(&alpha)
                .filter(|(_, &a)| a <= 1e-12)
                .map(|(&g, _)| g)
                .fold(f64::INFINITY, f64::min);
            match (ub.is_finite(), lb.is_finite()) {
                (true, true) => 0.5 * (ub + lb),
                (true, false) => ub,
                (false, true) => lb,
                _ => 0.0,
            }
        };

        // Keep only the support vectors.
        let sv_rows: Vec<usize> = (0..n).filter(|&t| alpha[t] > 1e-12).collect();
        let support = data.select_rows(&sv_rows)?;
        let alpha: Vec<f64> = sv_rows.iter().map(|&t| alpha[t]).collect();
        Ok(Self {
            support,
            alpha,
            rho,
            gamma,
            iterations,
        })
    }

    /// Decision value `f(x) = Σ αᵢ K(svᵢ, x) − ρ`: positive inside the
    /// estimated support, negative outside (outlier).
    pub fn decision(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.support.cols() {
            return Err(Error::DimensionMismatch {
                expected: self.support.cols(),
                actual: x.len(),
            });
        }
        let mut acc = 0.0;
        for (sv, &a) in self.support.iter_rows().zip(&self.alpha) {
            acc += a * rbf(sv, x, self.gamma);
        }
        Ok(acc - self.rho)
    }

    /// `true` when the point falls inside the estimated support.
    pub fn is_inlier(&self, x: &[f64]) -> Result<bool> {
        Ok(self.decision(x)? >= 0.0)
    }

    /// Number of support vectors retained.
    pub fn n_support(&self) -> usize {
        self.support.rows()
    }

    /// SMO iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The RBF coefficient used.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

/// RBF kernel `exp(-γ ||a − b||²)`.
#[inline]
fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let mut acc = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    (-gamma * acc).exp()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;
    use tkdc_common::Rng;

    fn blob(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(2);
        for _ in 0..n {
            m.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
                .unwrap();
        }
        m
    }

    #[test]
    fn separates_center_from_far_point() {
        let data = blob(300, 1);
        let svm = OneClassSvm::fit(&data, &SvmParams::default()).unwrap();
        assert!(svm.is_inlier(&[0.0, 0.0]).unwrap());
        assert!(!svm.is_inlier(&[10.0, 10.0]).unwrap());
        assert!(svm.decision(&[0.0, 0.0]).unwrap() > svm.decision(&[3.0, 3.0]).unwrap());
    }

    #[test]
    fn nu_bounds_training_outlier_fraction() {
        let data = blob(400, 3);
        for nu in [0.05, 0.2] {
            let svm = OneClassSvm::fit(
                &data,
                &SvmParams {
                    nu,
                    ..SvmParams::default()
                },
            )
            .unwrap();
            let outliers = data
                .iter_rows()
                .filter(|r| !svm.is_inlier(r).unwrap())
                .count();
            let frac = outliers as f64 / data.rows() as f64;
            // ν is an upper bound on the outlier fraction (modulo the
            // tolerance of the solver); allow generous slack.
            assert!(
                frac <= nu + 0.05,
                "ν={nu}: training outlier fraction {frac}"
            );
            // And the support-vector count is at least ~νn.
            assert!(
                svm.n_support() as f64 >= nu * data.rows() as f64 * 0.8,
                "ν={nu}: only {} SVs",
                svm.n_support()
            );
        }
    }

    #[test]
    fn duplicate_points_handled() {
        let mut m = Matrix::with_cols(2);
        for _ in 0..60 {
            m.push_row(&[1.0, 1.0]).unwrap();
        }
        for _ in 0..60 {
            m.push_row(&[2.0, 2.0]).unwrap();
        }
        let svm = OneClassSvm::fit(&m, &SvmParams::default()).unwrap();
        assert!(svm.decision(&[1.0, 1.0]).unwrap().is_finite());
    }

    #[test]
    fn rejects_bad_params() {
        let data = blob(50, 5);
        assert!(OneClassSvm::fit(
            &data,
            &SvmParams {
                nu: 0.0,
                ..SvmParams::default()
            }
        )
        .is_err());
        assert!(OneClassSvm::fit(
            &data,
            &SvmParams {
                nu: 1.5,
                ..SvmParams::default()
            }
        )
        .is_err());
        assert!(OneClassSvm::fit(
            &data,
            &SvmParams {
                gamma: Some(-1.0),
                ..SvmParams::default()
            }
        )
        .is_err());
        let empty = Matrix::with_cols(2);
        assert!(OneClassSvm::fit(&empty, &SvmParams::default()).is_err());
        let svm = OneClassSvm::fit(&data, &SvmParams::default()).unwrap();
        assert!(svm.decision(&[1.0]).is_err());
    }

    #[test]
    fn explicit_gamma_respected() {
        let data = blob(100, 7);
        let svm = OneClassSvm::fit(
            &data,
            &SvmParams {
                gamma: Some(0.25),
                ..SvmParams::default()
            },
        )
        .unwrap();
        assert_eq!(svm.gamma(), 0.25);
        assert!(svm.iterations() > 0);
    }
}
