//! kNN-distance outlier scores (Ramaswamy, Rastogi & Shim, SIGMOD 2000 —
//! reference [43] of the tKDC paper).
//!
//! A point's outlier score is its (scaled) distance to its k-th nearest
//! neighbor; the points with the largest scores are outliers. Scores are
//! *not* probability densities — they are not normalized, not comparable
//! across datasets, and yield no p-values — which is the statistical
//! interpretability gap §5 of the paper highlights.

use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::order::quantile;
use tkdc_common::Matrix;
use tkdc_index::{k_nearest, KdTree, SplitRule};

/// Fitted kNN-distance outlier model.
#[derive(Debug)]
pub struct KnnOutlierModel {
    tree: KdTree,
    inv_h: Vec<f64>,
    k: usize,
}

impl KnnOutlierModel {
    /// Fits the model: indexes the data and fixes `k`.
    ///
    /// Distances are scaled per dimension by the data's standard
    /// deviations (the usual normalization; pass-through for z-scored
    /// data).
    ///
    /// # Errors
    /// Fails on empty data or `k == 0` / `k >= n`.
    pub fn fit(data: &Matrix, k: usize) -> Result<Self> {
        if data.rows() == 0 {
            return Err(Error::EmptyInput("kNN outlier training data"));
        }
        if k == 0 || k >= data.rows() {
            return Err(invalid_param(
                "k",
                format!("must be in 1..n={}, got {k}", data.rows()),
            ));
        }
        let stds = tkdc_common::stats::column_stds(data);
        let inv_h = crate::util::inv_scales_from_stds(&stds);
        Ok(Self {
            tree: KdTree::build(data, 16, SplitRule::Median)?,
            inv_h,
            k,
        })
    }

    /// Outlier score of a query point: scaled distance to its k-th
    /// nearest training neighbor (larger = more anomalous).
    pub fn score(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.tree.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.tree.dim(),
                actual: x.len(),
            });
        }
        let hits = k_nearest(&self.tree, x, &self.inv_h, self.k, false);
        Ok(hits
            .last()
            .map(|h| h.sq_dist.sqrt())
            .unwrap_or(f64::INFINITY))
    }

    /// Outlier score of a point that is (or may be) part of the training
    /// set: zero-distance matches are excluded, so a training row is
    /// scored against the *other* points — the same semantics as
    /// [`Self::training_scores`] and therefore directly comparable with
    /// [`Self::threshold_for_rate`].
    pub fn score_excluding_self(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.tree.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.tree.dim(),
                actual: x.len(),
            });
        }
        let hits = k_nearest(&self.tree, x, &self.inv_h, self.k, true);
        Ok(hits
            .last()
            .map(|h| h.sq_dist.sqrt())
            .unwrap_or(f64::INFINITY))
    }

    /// Scores every training point against the rest of the dataset
    /// (excluding self-matches), in the tree's reordered row order.
    pub fn training_scores(&self) -> Vec<f64> {
        self.tree
            .node_points(self.tree.root())
            .map(|p| {
                let hits = k_nearest(&self.tree, p, &self.inv_h, self.k, true);
                hits.last()
                    .map(|h| h.sq_dist.sqrt())
                    .unwrap_or(f64::INFINITY)
            })
            .collect()
    }

    /// Score threshold above which a fraction `p` of the training data is
    /// flagged (the analog of the paper's quantile threshold `t(p)`).
    pub fn threshold_for_rate(&self, p: f64) -> Result<f64> {
        let scores = self.training_scores();
        quantile(&scores, 1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::Rng;

    fn blob_with_outlier(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(2);
        for _ in 0..n {
            m.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
                .unwrap();
        }
        m.push_row(&[15.0, 15.0]).unwrap();
        m
    }

    #[test]
    fn planted_outlier_gets_top_score() {
        let data = blob_with_outlier(400, 1);
        let model = KnnOutlierModel::fit(&data, 5).unwrap();
        let outlier_score = model.score(&[15.0, 15.0]).unwrap();
        let center_score = model.score(&[0.0, 0.0]).unwrap();
        assert!(
            outlier_score > 5.0 * center_score,
            "outlier {outlier_score} vs center {center_score}"
        );
        // Among training scores, the maximum belongs to the planted point.
        let scores = model.training_scores();
        let max = scores.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - outlier_score).abs() < outlier_score * 0.5);
    }

    #[test]
    fn threshold_flags_expected_fraction() {
        let data = blob_with_outlier(500, 3);
        let model = KnnOutlierModel::fit(&data, 5).unwrap();
        let t = model.threshold_for_rate(0.05).unwrap();
        let scores = model.training_scores();
        let flagged = scores.iter().filter(|&&s| s > t).count();
        let frac = flagged as f64 / scores.len() as f64;
        assert!(frac <= 0.06, "flagged fraction {frac}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let data = blob_with_outlier(10, 5);
        assert!(KnnOutlierModel::fit(&data, 0).is_err());
        assert!(KnnOutlierModel::fit(&data, 11).is_err());
        let empty = Matrix::with_cols(2);
        assert!(KnnOutlierModel::fit(&empty, 3).is_err());
        let model = KnnOutlierModel::fit(&data, 3).unwrap();
        assert!(model.score(&[1.0]).is_err());
    }
}
