//! DBSCAN density-based clustering (Ester, Kriegel, Sander & Xu, KDD 1996
//! — reference [22] of the tKDC paper).
//!
//! Points with at least `min_pts` neighbors within `eps` are core points;
//! clusters grow by density reachability; everything unreachable is
//! noise. The noise set doubles as an outlier list, but — as §5 notes —
//! DBSCAN emits *labels only*: no scores, no densities, no statistical
//! interpretation, and results hinge on the `eps`/`min_pts` knobs.

use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::Matrix;
use tkdc_index::{KdTree, SplitRule};

/// Cluster assignment for one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbscanLabel {
    /// Member of cluster `id` (0-based).
    Cluster(u32),
    /// Density-unreachable noise (outlier).
    Noise,
}

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbscanParams {
    /// Neighborhood radius in scaled space.
    pub eps: f64,
    /// Minimum neighborhood size (self included) to be a core point.
    pub min_pts: usize,
}

/// Runs DBSCAN over the dataset; returns per-row labels (input order)
/// and the number of clusters found.
///
/// Distances are scaled by per-column standard deviations like the other
/// detectors in this crate.
///
/// # Errors
/// Fails on empty input or non-positive parameters.
pub fn dbscan(data: &Matrix, params: &DbscanParams) -> Result<(Vec<DbscanLabel>, usize)> {
    if data.rows() == 0 {
        return Err(Error::EmptyInput("dbscan input"));
    }
    if !params.eps.is_finite() || params.eps <= 0.0 {
        return Err(invalid_param("eps", "must be positive"));
    }
    if params.min_pts == 0 {
        return Err(invalid_param("min_pts", "must be positive"));
    }
    let n = data.rows();
    let stds = tkdc_common::stats::column_stds(data);
    let inv_h = crate::util::inv_scales_from_stds(&stds);
    let tree = KdTree::build(data, 16, SplitRule::Median)?;

    // The tree reorders rows; build the neighbor lists in *input* order by
    // querying with input rows and translating hits back via the
    // reorder permutation (content-stable pairing as in dualtree).
    // Simpler and exact here: query the tree with each input row and
    // collect neighbor *positions in input order* by matching against a
    // content index is fragile with duplicates — instead run the whole
    // algorithm in tree order and unpermute the labels at the end.
    let points: Vec<&[f64]> = tree.node_points(tree.root()).collect();

    // Neighbor lists in tree order (indices are tree rows).
    let mut neighbor_lists: Vec<Vec<u32>> = Vec::with_capacity(n);
    for p in &points {
        let mut hits: Vec<u32> = Vec::new();
        tree.for_each_in_scaled_radius_indexed(p, &inv_h, params.eps, |row, _| {
            hits.push(row as u32) // CAST: row < n, and point counts are far below u32::MAX
        });
        neighbor_lists.push(hits);
    }

    const UNVISITED: u32 = u32::MAX;
    const NOISE: u32 = u32::MAX - 1;
    let mut labels = vec![UNVISITED; n];
    let mut cluster = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    for row in 0..n {
        if labels[row] != UNVISITED {
            continue;
        }
        if neighbor_lists[row].len() < params.min_pts {
            labels[row] = NOISE;
            continue;
        }
        // Grow a new cluster from this core point.
        labels[row] = cluster;
        stack.clear();
        stack.extend(&neighbor_lists[row]);
        while let Some(q) = stack.pop() {
            let q = q as usize; // CAST: u32 -> usize is lossless on 64-bit targets
            if labels[q] == NOISE {
                labels[q] = cluster; // border point adopted by the cluster
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cluster;
            if neighbor_lists[q].len() >= params.min_pts {
                stack.extend(&neighbor_lists[q]);
            }
        }
        cluster += 1;
    }

    // Unpermute to input order.
    let perm = tree.reorder_permutation(data);
    let mut out = vec![DbscanLabel::Noise; n];
    for (tree_row, &input_row) in perm.iter().enumerate() {
        out[input_row] = match labels[tree_row] {
            NOISE => DbscanLabel::Noise,
            c => DbscanLabel::Cluster(c),
        };
    }
    Ok((out, cluster as usize)) // CAST: u32 -> usize is lossless on 64-bit targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::Rng;

    fn two_blobs_and_noise(seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(2);
        for _ in 0..150 {
            m.push_row(&[rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)])
                .unwrap();
        }
        for _ in 0..150 {
            m.push_row(&[rng.normal(8.0, 0.3), rng.normal(8.0, 0.3)])
                .unwrap();
        }
        m.push_row(&[4.0, 4.0]).unwrap(); // isolated noise
        m
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let data = two_blobs_and_noise(1);
        let (labels, clusters) = dbscan(
            &data,
            &DbscanParams {
                eps: 0.3,
                min_pts: 5,
            },
        )
        .unwrap();
        assert_eq!(clusters, 2, "expected two clusters");
        // The planted point (last row) is noise.
        assert_eq!(labels[300], DbscanLabel::Noise);
        // The two blobs land in different clusters.
        let first = labels[0];
        let second = labels[200];
        assert_ne!(first, second);
        assert!(matches!(first, DbscanLabel::Cluster(_)));
        assert!(matches!(second, DbscanLabel::Cluster(_)));
        // Same-blob points share a label.
        assert_eq!(labels[0], labels[50]);
        assert_eq!(labels[200], labels[250]);
    }

    #[test]
    fn tiny_eps_marks_everything_noise() {
        let data = two_blobs_and_noise(3);
        let (labels, clusters) = dbscan(
            &data,
            &DbscanParams {
                eps: 1e-6,
                min_pts: 3,
            },
        )
        .unwrap();
        assert_eq!(clusters, 0);
        assert!(labels.iter().all(|&l| l == DbscanLabel::Noise));
    }

    #[test]
    fn huge_eps_single_cluster() {
        let data = two_blobs_and_noise(5);
        let (labels, clusters) = dbscan(
            &data,
            &DbscanParams {
                eps: 100.0,
                min_pts: 3,
            },
        )
        .unwrap();
        assert_eq!(clusters, 1);
        assert!(labels.iter().all(|&l| l == DbscanLabel::Cluster(0)));
    }

    #[test]
    fn rejects_bad_params() {
        let data = two_blobs_and_noise(7);
        assert!(dbscan(
            &data,
            &DbscanParams {
                eps: 0.0,
                min_pts: 3
            }
        )
        .is_err());
        assert!(dbscan(
            &data,
            &DbscanParams {
                eps: 1.0,
                min_pts: 0
            }
        )
        .is_err());
        let empty = Matrix::with_cols(2);
        assert!(dbscan(
            &empty,
            &DbscanParams {
                eps: 1.0,
                min_pts: 3
            }
        )
        .is_err());
    }
}
