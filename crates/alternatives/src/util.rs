//! Crate-internal helpers shared by the detectors.

/// Per-axis inverse scales from column standard deviations: `1/σ_i`, with
/// degenerate (constant) columns treated as unit scale. Every detector in
/// this crate normalizes distances this way.
pub(crate) fn inv_scales_from_stds(stds: &[f64]) -> Vec<f64> {
    stds.iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { 1.0 })
        .collect()
}
