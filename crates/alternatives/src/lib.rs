#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tkdc-alternatives
//!
//! The related-work outlier/anomaly detectors discussed in §5 of the tKDC
//! paper, implemented on the same substrates so the comparisons the paper
//! makes can be run quantitatively:
//!
//! * [`knn_outlier`] — distance-to-k-th-neighbor scores (Ramaswamy et al.);
//!   fast but not a normalized probability density.
//! * [`knn_density`] — the classic kNN density estimate; non-smooth and
//!   unnormalized (the §2.4 contrast with KDE).
//! * [`lof`] — Local Outlier Factor (Breunig et al.); density-relative,
//!   still not statistically interpretable.
//! * [`dbscan`] — DBSCAN clustering (Ester et al.); noise points as
//!   outliers, no scores at all.
//! * [`ocsvm`] — one-class SVM support estimation (Schölkopf et al.);
//!   statistically motivated but with O(n²)–O(n³) training, which the
//!   paper cites as *slower than even naive KDE evaluation* — the
//!   `related_work` harness in `tkdc-bench` measures exactly that claim.
//!
//! None of these produce normalized, differentiable probability densities;
//! that interpretability gap (p-values, level sets, hazard rates) is the
//! paper's §5 argument for KDE-based classification. This crate exists to
//! make that trade-off reproducible, not to replace tKDC.

pub(crate) mod util;

pub mod dbscan;
pub mod knn_density;
pub mod knn_outlier;
pub mod lof;
pub mod ocsvm;

pub use dbscan::{dbscan, DbscanLabel, DbscanParams};
pub use knn_density::KnnDensity;
pub use knn_outlier::KnnOutlierModel;
pub use lof::LofModel;
pub use ocsvm::{OneClassSvm, SvmParams};
