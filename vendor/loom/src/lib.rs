#![forbid(unsafe_code)]
//! Offline stand-in for the [`loom`](https://docs.rs/loom) model
//! checker, in the workspace's vendored-dependency style (see
//! `vendor/README.md`).
//!
//! This crate exists so `tkdc-sync` can swap instrumented concurrency
//! primitives in under `--cfg tkdc_model_check` without a crates.io
//! dependency. It explores bounded executions of a test closure:
//!
//! * **Serialized scheduling** (CHESS-style): managed threads are real
//!   OS threads, but a token scheduler lets exactly one run at a time;
//!   every instrumented operation is a yield point. The interleaving is
//!   a deterministic function of a recorded decision log, explored
//!   depth-first with backtracking, optionally preemption-bounded.
//! * **Weak-memory modeling**: atomics keep a bounded store history;
//!   sub-`SeqCst` loads may return any coherence/happens-before-eligible
//!   store (so `Relaxed` readers observe stale values), `Acquire` loads
//!   absorb release clocks, RMWs extend release sequences.
//! * **Race detection**: vector clocks across threads; non-atomic shared
//!   data is modeled by [`cell::RaceCell`], which reports unordered
//!   conflicting accesses as [`Violation::DataRace`].
//! * **Deadlock and divergence detection**: all-blocked states are
//!   reported as [`Violation::Deadlock`]; executions exceeding the step
//!   budget (spin loops) as [`Violation::TooManySteps`].
//!
//! Known differences from upstream loom: `SeqCst` is modeled as
//! "read-newest + acquire/release" (no separate SC order), CAS never
//! fails spuriously and its failure path reads the newest store, store
//! histories are bounded ([`rt::STORE_HISTORY`] entries), and there is
//! no `UnsafeCell`/`lazy_static` surface — only what `tkdc-sync` needs.
//!
//! Entry points: [`model`] (panic on violation) and [`Builder`]
//! (introspect the [`Report`], set bounds, weaken orderings for
//! seeded-bug tests).

pub mod cell;
pub mod model;
mod rt;
pub mod sync;
pub mod thread;

pub use model::{model, Builder, Report};
pub use rt::Violation;

#[cfg(test)]
mod tests {
    use super::cell::RaceCell;
    use super::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::{model, thread, Builder, Violation};
    use std::sync::Arc;

    #[test]
    fn counter_with_joins_is_clean() {
        let report = Builder::new().check(|| {
            let n = Arc::new(AtomicU64::new(0));
            let a = {
                let n = n.clone();
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            };
            let b = {
                let n = n.clone();
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            };
            a.join().unwrap();
            b.join().unwrap();
            // RMWs are atomic under any ordering; joins order the loads.
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
        assert!(
            report.violation.is_none(),
            "unexpected: {:?}",
            report.violation
        );
        assert!(report.complete);
        assert!(report.iterations > 1, "expected multiple interleavings");
    }

    #[test]
    fn release_acquire_message_passing_is_clean() {
        let report = Builder::new().check(|| {
            let data = Arc::new(RaceCell::new(0u32));
            let flag = Arc::new(AtomicU64::new(0));
            let t = {
                let (data, flag) = (data.clone(), flag.clone());
                thread::spawn(move || {
                    data.with_mut(|d| *d = 42);
                    flag.store(1, Ordering::Release);
                })
            };
            // No spinning under a model checker: check the flag once;
            // the scheduler will produce both outcomes across runs.
            if flag.load(Ordering::Acquire) == 1 {
                data.with(|d| assert_eq!(*d, 42));
            }
            t.join().unwrap();
        });
        assert!(
            report.violation.is_none(),
            "unexpected: {:?}",
            report.violation
        );
        assert!(report.complete);
    }

    #[test]
    fn relaxed_message_passing_races() {
        let report = Builder::new().check(|| {
            let data = Arc::new(RaceCell::new(0u32));
            let flag = Arc::new(AtomicU64::new(0));
            let t = {
                let (data, flag) = (data.clone(), flag.clone());
                thread::spawn(move || {
                    data.with_mut(|d| *d = 42);
                    flag.store(1, Ordering::Relaxed); // no release edge
                })
            };
            if flag.load(Ordering::Relaxed) == 1 {
                data.with(|d| assert_eq!(*d, 42)); // unordered read: race
            }
            t.join().unwrap();
        });
        assert!(
            matches!(report.violation, Some(Violation::DataRace { .. })),
            "expected a data race, got {:?}",
            report.violation
        );
    }

    #[test]
    fn weaken_orderings_breaks_release_acquire() {
        // The clean message-passing harness above must fail once the
        // checker downgrades every ordering to Relaxed — this is the
        // mechanism the seeded-bug tests rely on.
        let mut b = Builder::new();
        b.weaken_orderings = true;
        let report = b.check(|| {
            let data = Arc::new(RaceCell::new(0u32));
            let flag = Arc::new(AtomicU64::new(0));
            let t = {
                let (data, flag) = (data.clone(), flag.clone());
                thread::spawn(move || {
                    data.with_mut(|d| *d = 42);
                    flag.store(1, Ordering::Release);
                })
            };
            if flag.load(Ordering::Acquire) == 1 {
                data.with(|d| assert_eq!(*d, 42));
            }
            t.join().unwrap();
        });
        assert!(
            matches!(report.violation, Some(Violation::DataRace { .. })),
            "expected a data race under weakened orderings, got {:?}",
            report.violation
        );
    }

    #[test]
    fn missing_join_races() {
        let report = Builder::new().check(|| {
            let data = Arc::new(RaceCell::new(0u32));
            let t = {
                let data = data.clone();
                thread::spawn(move || data.with_mut(|d| *d = 1))
            };
            // Read without joining first: unordered with the write in
            // the interleavings where the child runs late.
            data.with(|d| {
                let _ = *d;
            });
            drop(t);
        });
        assert!(
            matches!(report.violation, Some(Violation::DataRace { .. })),
            "expected a data race, got {:?}",
            report.violation
        );
    }

    #[test]
    fn relaxed_loads_observe_stale_values() {
        // Store buffering: with everything Relaxed both readers may see
        // the initial zeros — the assert must fail in some execution.
        let report = Builder::new().check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let t = {
                let (x, y) = (x.clone(), y.clone());
                thread::spawn(move || {
                    x.store(1, Ordering::Relaxed);
                    y.load(Ordering::Relaxed)
                })
            };
            x.store(0, Ordering::Relaxed); // re-assert initial x is observable
            y.store(1, Ordering::Relaxed);
            let r2 = x.load(Ordering::Relaxed);
            let r1 = t.join().unwrap();
            // The property under test: (r1, r2) == (0, 0) must be
            // reachable via stale reads; flag it as a violation so the
            // report proves reachability.
            assert!(!(r1 == 0 && r2 == 0), "observed stale pair");
        });
        assert!(
            matches!(report.violation, Some(Violation::Panic { .. })),
            "expected the stale (0,0) pair to be reachable, got {:?}",
            report.violation
        );
    }

    #[test]
    fn lock_cycle_is_reported_as_deadlock() {
        let report = Builder::new().check(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let t = {
                let (a, b) = (a.clone(), b.clone());
                thread::spawn(move || {
                    let _ga = a.lock().unwrap();
                    let _gb = b.lock().unwrap();
                })
            };
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            t.join().unwrap();
        });
        assert!(
            matches!(report.violation, Some(Violation::Deadlock { .. })),
            "expected a deadlock, got {:?}",
            report.violation
        );
    }

    #[test]
    fn mutex_protects_plain_data() {
        let report = Builder::new().check(|| {
            let cell = Arc::new(Mutex::new(0u64));
            let t = {
                let cell = cell.clone();
                thread::spawn(move || {
                    *cell.lock().unwrap() += 1;
                })
            };
            *cell.lock().unwrap() += 1;
            t.join().unwrap();
            assert_eq!(*cell.lock().unwrap(), 2);
        });
        assert!(
            report.violation.is_none(),
            "unexpected: {:?}",
            report.violation
        );
        assert!(report.complete);
    }

    #[test]
    fn scoped_threads_join_implicitly() {
        let report = Builder::new().check(|| {
            let n = AtomicUsize::new(0);
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        n.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            // Scope exit model-joins every spawned thread.
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
        assert!(
            report.violation.is_none(),
            "unexpected: {:?}",
            report.violation
        );
        assert!(report.complete);
    }

    #[test]
    fn condvar_handoff_is_clean() {
        // Classic guarded handoff: the consumer waits (predicate loop)
        // for the producer's flag. Every interleaving must terminate —
        // including the one where the producer notifies before the
        // consumer ever waits (the predicate catches it).
        let report = Builder::new().check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let t = {
                let pair = pair.clone();
                thread::spawn(move || {
                    let (lock, cvar) = &*pair;
                    *lock.lock().unwrap() = true;
                    cvar.notify_one();
                })
            };
            let (lock, cvar) = &*pair;
            let guard = cvar
                .wait_while(lock.lock().unwrap(), |ready| !*ready)
                .unwrap();
            assert!(*guard);
            drop(guard);
            t.join().unwrap();
        });
        assert!(
            report.violation.is_none(),
            "unexpected: {:?}",
            report.violation
        );
        assert!(report.complete);
        assert!(report.iterations > 1, "expected multiple interleavings");
    }

    #[test]
    fn condvar_lost_wakeup_is_deadlock() {
        // Seeded bug shape: the producer notifies without any flag
        // protocol, so in the schedule where it fires before the
        // consumer parks the wakeup is lost and the naked `wait`
        // sleeps forever — the checker must find that schedule and
        // call it a deadlock.
        let report = Builder::new().check(|| {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let t = {
                let pair = pair.clone();
                thread::spawn(move || {
                    let (_, cvar) = &*pair;
                    cvar.notify_one(); // lost if nobody is parked yet
                })
            };
            let (lock, cvar) = &*pair;
            // BUG: no predicate — if the notify already happened this
            // park is never woken.
            let _guard = cvar.wait(lock.lock().unwrap()).unwrap();
            t.join().unwrap();
        });
        assert!(
            matches!(report.violation, Some(Violation::Deadlock { .. })),
            "expected a lost-wakeup deadlock, got {:?}",
            report.violation
        );
    }

    #[test]
    fn condvar_notify_all_wakes_every_waiter() {
        let report = Builder::new().check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let pair = pair.clone();
                    thread::spawn(move || {
                        let (lock, cvar) = &*pair;
                        drop(cvar.wait_while(lock.lock().unwrap(), |go| !*go).unwrap());
                    })
                })
                .collect();
            let (lock, cvar) = &*pair;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
            for w in workers {
                w.join().unwrap();
            }
        });
        assert!(
            report.violation.is_none(),
            "unexpected: {:?}",
            report.violation
        );
        assert!(report.complete);
    }

    #[test]
    fn model_panics_on_violation() {
        let caught = std::panic::catch_unwind(|| {
            model(|| {
                let data = Arc::new(RaceCell::new(0u32));
                let t = {
                    let data = data.clone();
                    thread::spawn(move || data.with_mut(|d| *d = 1))
                };
                data.with(|d| {
                    let _ = *d;
                });
                drop(t);
            });
        });
        assert!(caught.is_err(), "model() must panic on a violation");
    }

    #[test]
    fn iteration_cap_reports_incomplete() {
        let mut b = Builder::new();
        b.max_iterations = 2;
        let report = b.check(|| {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let n = n.clone();
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert!(report.violation.is_none());
        assert!(!report.complete);
        assert_eq!(report.iterations, 2);
    }
}
