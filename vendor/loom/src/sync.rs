//! Instrumented `std::sync` stand-ins: atomics with a C11-ish weak
//! memory model and a scheduler-aware `Mutex`.
//!
//! ## Atomics
//!
//! All atomic types share one engine ([`Atom`]) over `u64` payloads.
//! Each location keeps a bounded history of stores; loads weaker than
//! `SeqCst` non-deterministically pick any store that coherence and
//! happens-before allow (a schedule decision — this is how the checker
//! observes stale values through `Relaxed`), `Acquire`-or-stronger
//! loads absorb the chosen store's release clock, and read-modify-write
//! operations always act on the newest store and extend its release
//! sequence. See `rt.rs` for the full modeling contract.
//!
//! ## Mutex
//!
//! Lock acquisition goes through the scheduler's lock table (blocking
//! threads are descheduled, enabling deadlock detection); the guarded
//! data itself lives in a real uncontended `std::sync::Mutex`.

use std::sync::{LockResult, Mutex as StdMutex, MutexGuard as StdGuard};

pub use std::sync::atomic::Ordering;

use crate::rt::{self, StoreRec, VClock, STORE_HISTORY};

fn eff(ord: Ordering, weaken: bool) -> Ordering {
    if weaken {
        Ordering::Relaxed
    } else {
        ord
    }
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// State of one atomic location: bounded store history in modification
/// order plus the next store sequence number.
#[derive(Debug)]
struct AtomState {
    stores: Vec<StoreRec>,
    next_seq: u64,
}

/// The shared atomic engine. Interior state is behind a real mutex,
/// which is uncontended by construction: only the token-holding thread
/// ever touches it.
#[derive(Debug)]
struct Atom {
    id: u64,
    state: StdMutex<AtomState>,
}

impl Atom {
    fn new(val: u64) -> Self {
        // Creation is not a visible operation (no yield); the initial
        // value acts as a store by the creating thread, so anything
        // ordered after creation (e.g. threads spawned later) cannot
        // read "before" it.
        let when = if rt::in_model() {
            rt::with_ctx(|exec, tid| exec.with_thread(tid, |v| v.clock().clone()))
        } else {
            VClock::new()
        };
        Atom {
            id: rt::new_object_id(),
            state: StdMutex::new(AtomState {
                stores: vec![StoreRec {
                    val,
                    seq: 1,
                    when,
                    msg: VClock::new(),
                }],
                next_seq: 2,
            }),
        }
    }

    fn load(&self, ord: Ordering) -> u64 {
        rt::with_ctx(|exec, tid| {
            exec.yield_point(tid);
            exec.with_thread(tid, |view| {
                let ord = eff(ord, view.weaken_orderings());
                let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                let rec = if ord == Ordering::SeqCst {
                    // SeqCst modeled as "read newest + acquire": the SC
                    // total order itself is not tracked separately.
                    st.stores.last().expect("atom history never empty").clone()
                } else {
                    // Floor: never older than a store that happens-before
                    // this thread, anything already seen here, or the
                    // oldest store still in the bounded history.
                    let mut floor = view.last_seen(self.id);
                    for s in st.stores.iter() {
                        if s.when.le(view.clock()) {
                            floor = floor.max(s.seq);
                        }
                    }
                    if let Some(first) = st.stores.first() {
                        floor = floor.max(first.seq);
                    }
                    let alts: Vec<u64> = st
                        .stores
                        .iter()
                        .filter(|s| s.seq >= floor)
                        .map(|s| s.seq)
                        .collect();
                    let seq = view.choose(alts);
                    st.stores
                        .iter()
                        .find(|s| s.seq == seq)
                        .expect("chosen store is in history")
                        .clone()
                };
                drop(st);
                view.record_seen(self.id, rec.seq);
                if is_acquire(ord) {
                    view.join_clock(&rec.msg);
                }
                rec.val
            })
        })
    }

    fn store(&self, val: u64, ord: Ordering) {
        rt::with_ctx(|exec, tid| {
            exec.yield_point(tid);
            exec.with_thread(tid, |view| {
                let ord = eff(ord, view.weaken_orderings());
                let when = view.clock().clone();
                let msg = if is_release(ord) {
                    when.clone()
                } else {
                    VClock::new()
                };
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                let seq = st.next_seq;
                st.next_seq += 1;
                st.stores.push(StoreRec {
                    val,
                    seq,
                    when,
                    msg,
                });
                if st.stores.len() > STORE_HISTORY {
                    st.stores.remove(0);
                }
                drop(st);
                view.record_seen(self.id, seq);
            })
        })
    }

    /// Read-modify-write: always acts on the newest store (RMW
    /// atomicity holds under any ordering) and extends its release
    /// sequence. Returns the previous value.
    fn rmw(&self, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        rt::with_ctx(|exec, tid| {
            exec.yield_point(tid);
            exec.with_thread(tid, |view| {
                let ord = eff(ord, view.weaken_orderings());
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                let prev = st.stores.last().expect("atom history never empty").clone();
                let seq = st.next_seq;
                st.next_seq += 1;
                let when = view.clock().clone();
                let mut msg = prev.msg.clone();
                if is_release(ord) {
                    msg.join(view.clock());
                }
                st.stores.push(StoreRec {
                    val: f(prev.val),
                    seq,
                    when,
                    msg,
                });
                if st.stores.len() > STORE_HISTORY {
                    st.stores.remove(0);
                }
                drop(st);
                view.record_seen(self.id, seq);
                if is_acquire(ord) {
                    view.join_clock(&prev.msg);
                }
                prev.val
            })
        })
    }

    /// Compare-exchange. Failure is modeled as a load of the newest
    /// store with the failure ordering (a simplification: real CAS
    /// failure may read stale values). No spurious failures, so `_weak`
    /// and strong variants share this.
    fn cas(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        rt::with_ctx(|exec, tid| {
            exec.yield_point(tid);
            exec.with_thread(tid, |view| {
                let success = eff(success, view.weaken_orderings());
                let failure = eff(failure, view.weaken_orderings());
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                let prev = st.stores.last().expect("atom history never empty").clone();
                if prev.val == current {
                    let seq = st.next_seq;
                    st.next_seq += 1;
                    let when = view.clock().clone();
                    let mut msg = prev.msg.clone();
                    if is_release(success) {
                        msg.join(view.clock());
                    }
                    st.stores.push(StoreRec {
                        val: new,
                        seq,
                        when,
                        msg,
                    });
                    if st.stores.len() > STORE_HISTORY {
                        st.stores.remove(0);
                    }
                    drop(st);
                    view.record_seen(self.id, seq);
                    if is_acquire(success) {
                        view.join_clock(&prev.msg);
                    }
                    Ok(prev.val)
                } else {
                    drop(st);
                    view.record_seen(self.id, prev.seq);
                    if is_acquire(failure) {
                        view.join_clock(&prev.msg);
                    }
                    Err(prev.val)
                }
            })
        })
    }
}

/// Generates the public wrapper around [`Atom`] for one atomic type.
macro_rules! atomic_type {
    ($name:ident, $prim:ty, $to:expr, $from:expr) => {
        /// Instrumented atomic (see module docs for the memory model).
        #[derive(Debug)]
        pub struct $name {
            atom: Atom,
        }

        impl $name {
            /// A new atomic holding `val`. Not `const` (unlike `std`):
            /// each location gets a process-unique id.
            pub fn new(val: $prim) -> Self {
                Self {
                    atom: Atom::new(($to)(val)),
                }
            }

            /// Instrumented `load`.
            pub fn load(&self, ord: Ordering) -> $prim {
                ($from)(self.atom.load(ord))
            }

            /// Instrumented `store`.
            pub fn store(&self, val: $prim, ord: Ordering) {
                self.atom.store(($to)(val), ord);
            }

            /// Instrumented `swap`.
            pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                ($from)(self.atom.rmw(ord, |_| ($to)(val)))
            }

            /// Instrumented `compare_exchange`.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.atom
                    .cas(($to)(current), ($to)(new), success, failure)
                    .map($from)
                    .map_err($from)
            }

            /// Instrumented `compare_exchange_weak` (no spurious
            /// failures are modeled).
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$prim>::default())
            }
        }

        impl From<$prim> for $name {
            fn from(val: $prim) -> Self {
                Self::new(val)
            }
        }
    };
}

atomic_type!(AtomicU64, u64, |v: u64| v, |v: u64| v);
atomic_type!(AtomicUsize, usize, |v: usize| v as u64, |v: u64| v as usize);
atomic_type!(AtomicBool, bool, |v: bool| v as u64, |v: u64| v != 0);

impl AtomicU64 {
    /// Instrumented `fetch_add` (wrapping, like `std`).
    pub fn fetch_add(&self, val: u64, ord: Ordering) -> u64 {
        self.atom.rmw(ord, |prev| prev.wrapping_add(val))
    }

    /// Instrumented `fetch_sub` (wrapping, like `std`).
    pub fn fetch_sub(&self, val: u64, ord: Ordering) -> u64 {
        self.atom.rmw(ord, |prev| prev.wrapping_sub(val))
    }

    /// Instrumented `fetch_max`.
    pub fn fetch_max(&self, val: u64, ord: Ordering) -> u64 {
        self.atom.rmw(ord, |prev| prev.max(val))
    }

    /// Instrumented `fetch_min`.
    pub fn fetch_min(&self, val: u64, ord: Ordering) -> u64 {
        self.atom.rmw(ord, |prev| prev.min(val))
    }
}

impl AtomicUsize {
    /// Instrumented `fetch_add` (wrapping, like `std`).
    pub fn fetch_add(&self, val: usize, ord: Ordering) -> usize {
        self.atom.rmw(ord, |prev| prev.wrapping_add(val as u64)) as usize
    }

    /// Instrumented `fetch_sub` (wrapping, like `std`).
    pub fn fetch_sub(&self, val: usize, ord: Ordering) -> usize {
        self.atom.rmw(ord, |prev| prev.wrapping_sub(val as u64)) as usize
    }

    /// Instrumented `fetch_max`.
    pub fn fetch_max(&self, val: usize, ord: Ordering) -> usize {
        self.atom.rmw(ord, |prev| prev.max(val as u64)) as usize
    }
}

impl AtomicBool {
    /// Instrumented `fetch_or`.
    pub fn fetch_or(&self, val: bool, ord: Ordering) -> bool {
        self.atom.rmw(ord, |prev| prev | (val as u64)) != 0
    }

    /// Instrumented `fetch_and`.
    pub fn fetch_and(&self, val: bool, ord: Ordering) -> bool {
        self.atom.rmw(ord, |prev| prev & (val as u64)) != 0
    }
}

/// Grouped atomics, mirroring `std::sync::atomic` so facade re-exports
/// can use one path.
pub mod atomic {
    pub use super::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Instrumented mutex: acquisition order is a scheduling decision,
/// contention deschedules through the lock table (so lock cycles are
/// reported as deadlocks), and lock/unlock carry the same
/// happens-before edges a real mutex provides.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    id: u64,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// A new instrumented mutex.
    pub fn new(data: T) -> Self {
        Self {
            id: rt::new_object_id(),
            data: StdMutex::new(data),
        }
    }

    /// Instrumented `lock`. Always `Ok`: poisoning is subsumed by the
    /// model's abort-on-panic semantics.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        rt::with_ctx(|exec, tid| exec.mutex_acquire(tid, self.id));
        // The real lock is uncontended: the scheduler admits one holder
        // at a time, so this never blocks the OS thread.
        let inner = self.data.lock().unwrap_or_else(|e| e.into_inner());
        Ok(MutexGuard {
            inner: Some(inner),
            lock: self,
        })
    }

    /// Mirror of `std`'s `get_mut` (exclusive access needs no model
    /// bookkeeping).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mirror of `std`'s `into_inner`.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Guard for [`Mutex`]; releases through the scheduler on drop.
///
/// Keeps a back-reference to its [`Mutex`] so [`Condvar::wait`] can
/// atomically release it and re-lock it after wakeup.
pub struct MutexGuard<'a, T> {
    inner: Option<StdGuard<'a, T>>,
    lock: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // A guard consumed by `Condvar::wait` has already handed its
        // real lock back and releases scheduler-side inside
        // `condvar_wait` (atomically with blocking); nothing to do.
        let Some(inner) = self.inner.take() else {
            return;
        };
        // Release the real lock before telling the scheduler: once the
        // lock table shows it free, another managed thread may take the
        // real lock, and it must not find this thread still holding it.
        drop(inner);
        rt::with_ctx(|exec, tid| exec.mutex_release(tid, self.lock.id));
        // The post-release yield is skipped while unwinding — a second
        // unwind out of a destructor would abort the process. Waiters
        // are still woken at the next scheduling point.
        if !std::thread::panicking() {
            rt::with_ctx(|exec, tid| exec.yield_point(tid));
        }
    }
}

/// Instrumented condition variable: the park/unpark protocol the
/// thread-pool worker loop is built on.
///
/// `wait` atomically releases the guard's mutex and deschedules the
/// thread until a `notify_one`/`notify_all`; a notify with no waiters is
/// lost, exactly like the real primitive, so a wait that can miss its
/// wakeup shows up as [`crate::Violation::Deadlock`]. Two deliberate
/// modeling differences from `std`: no spurious wakeups are generated
/// (callers must still loop on their predicate — `wait_while` is the
/// encouraged shape), and no timeout variants exist (a model checker
/// cannot wait out wall-clock time).
#[derive(Debug)]
pub struct Condvar {
    id: u64,
}

impl Condvar {
    /// A new instrumented condition variable.
    pub fn new() -> Self {
        Self {
            id: rt::new_object_id(),
        }
    }

    /// Instrumented `wait`: releases the mutex and blocks until
    /// notified, then re-acquires the mutex through the scheduler.
    /// Always `Ok` (poisoning is subsumed by abort-on-panic).
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        // Hand the real lock back *before* the scheduler-side release
        // inside condvar_wait: once the lock table shows the mutex free,
        // another managed thread may take the real lock.
        drop(guard.inner.take());
        drop(guard); // no-op Drop (inner already taken)
        rt::with_ctx(|exec, tid| exec.condvar_wait(tid, self.id, lock.id));
        lock.lock()
    }

    /// Instrumented `wait_while`: loops `wait` while `condition` holds.
    ///
    /// # Errors
    /// Never fails (poisoning is subsumed by abort-on-panic); the
    /// `LockResult` mirrors `std`'s signature.
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<MutexGuard<'a, T>>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self.wait(guard)?;
        }
        Ok(guard)
    }

    /// Instrumented `notify_one`. Which waiter wakes (when several are
    /// parked) is a schedule decision the checker explores.
    pub fn notify_one(&self) {
        rt::with_ctx(|exec, tid| exec.condvar_notify(tid, self.id, false));
    }

    /// Instrumented `notify_all`.
    pub fn notify_all(&self) {
        rt::with_ctx(|exec, tid| exec.condvar_notify(tid, self.id, true));
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}
