//! Instrumented `std::thread` stand-ins: managed spawn/join and scoped
//! threads whose scheduling goes through the model's token scheduler.
//!
//! Every managed thread is a *real* OS thread, but only the thread
//! holding the scheduling token makes progress, so the interleaving is
//! exactly the one the current [`crate::model::Builder`] schedule
//! prescribes. Joins create the same happens-before edges `std` joins
//! do (the joiner's vector clock absorbs the joinee's final clock).

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::rt::{self, Execution, Tid};

type Slot<T> = Arc<Mutex<Option<T>>>;

/// Body shared by free and scoped spawns: installs the context, waits
/// for the first token grant, runs the closure, parks the result, and
/// reports back to the scheduler.
fn run_managed<F, T>(exec: Arc<Execution>, tid: Tid, f: F, slot: Slot<T>)
where
    F: FnOnce() -> T,
{
    rt::set_ctx(exec.clone(), tid);
    exec.wait_for_grant(tid);
    let caught = catch_unwind(AssertUnwindSafe(f));
    let msg = match caught {
        Ok(v) => {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            None
        }
        Err(payload) => rt::panic_message(payload),
    };
    rt::clear_ctx();
    exec.finish_thread(tid, msg);
}

/// Extracts a joined thread's result. The model aborts whole executions
/// on any panic, so a join that returns at all returns `Ok` — matching
/// the `std::thread::Result` shape call sites expect.
fn take_result<T>(slot: &Slot<T>) -> std::thread::Result<T> {
    let v = slot
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("loom: joined thread left no result (double join?)");
    Ok(v)
}

/// Handle to a free-spawned managed thread.
pub struct JoinHandle<T> {
    tid: Tid,
    exec: Arc<Execution>,
    result: Slot<T>,
}

/// Spawns a managed thread. The spawn point is a scheduling decision:
/// the child may run immediately or arbitrarily later.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, parent) = rt::with_ctx(|e, t| (e.clone(), t));
    let child = exec.register_child(parent);
    let result: Slot<T> = Arc::new(Mutex::new(None));
    let slot = result.clone();
    let exec2 = exec.clone();
    std::thread::spawn(move || run_managed(exec2, child, f, slot));
    exec.yield_point(parent);
    JoinHandle {
        tid: child,
        exec,
        result,
    }
}

impl<T> JoinHandle<T> {
    /// Waits (through the scheduler) for the thread to finish and
    /// returns its result, absorbing its clock.
    pub fn join(self) -> std::thread::Result<T> {
        rt::with_ctx(|_, me| self.exec.join_thread(me, self.tid));
        take_result(&self.result)
    }

    /// Whether the thread has finished. Observing this is itself a
    /// scheduling decision (the answer legitimately varies by
    /// interleaving), so it yields first.
    pub fn is_finished(&self) -> bool {
        rt::with_ctx(|_, me| {
            self.exec.yield_point(me);
            self.exec.is_finished(self.tid)
        })
    }
}

/// Instrumented scope: wraps a real `std::thread::Scope` so borrows of
/// `'env` data still typecheck, while routing every spawn through the
/// scheduler. All still-running scoped threads are model-joined when
/// the scope closure returns, *before* `std`'s own blocking joins run
/// (which would otherwise block outside the scheduler and wedge the
/// model); by then every real thread has finished, so the `std` joins
/// return immediately.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    exec: Arc<Execution>,
    spawned: Mutex<Vec<Tid>>,
}

/// Handle to a scoped managed thread.
pub struct ScopedJoinHandle<'scope, T> {
    tid: Tid,
    exec: Arc<Execution>,
    result: Slot<T>,
    _scope: PhantomData<&'scope ()>,
}

/// Instrumented `std::thread::scope`. The closure receives
/// `&Scope<'scope, 'env>` (a short borrow of the wrapper, whose field
/// is the `&'scope` reference `std` hands out) rather than `std`'s
/// `&'scope Scope<'scope, 'env>`; call sites written against `std` are
/// unaffected.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'a, 'scope> FnOnce(&'a Scope<'scope, 'env>) -> T,
{
    let exec = rt::with_ctx(|e, _| e.clone());
    std::thread::scope(|s| {
        let wrapper = Scope {
            inner: s,
            exec,
            spawned: Mutex::new(Vec::new()),
        };
        let out = f(&wrapper);
        wrapper.join_all();
        out
    })
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a managed scoped thread (a scheduling decision, like
    /// [`spawn`]).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let parent = rt::with_ctx(|_, t| t);
        let child = self.exec.register_child(parent);
        self.spawned
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(child);
        let result: Slot<T> = Arc::new(Mutex::new(None));
        let slot = result.clone();
        let exec = self.exec.clone();
        self.inner.spawn(move || run_managed(exec, child, f, slot));
        self.exec.yield_point(parent);
        ScopedJoinHandle {
            tid: child,
            exec: self.exec.clone(),
            result,
            _scope: PhantomData,
        }
    }

    /// Model-joins every thread spawned in this scope. Joining a thread
    /// that was already joined via its handle only re-absorbs its final
    /// clock, which is harmless.
    fn join_all(&self) {
        let tids: Vec<Tid> =
            std::mem::take(&mut *self.spawned.lock().unwrap_or_else(|e| e.into_inner()));
        let me = rt::with_ctx(|_, t| t);
        for tid in tids {
            self.exec.join_thread(me, tid);
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits (through the scheduler) for the thread and returns its
    /// result.
    pub fn join(self) -> std::thread::Result<T> {
        rt::with_ctx(|_, me| self.exec.join_thread(me, self.tid));
        take_result(&self.result)
    }

    /// Whether the thread has finished (yields first; see
    /// [`JoinHandle::is_finished`]).
    pub fn is_finished(&self) -> bool {
        rt::with_ctx(|_, me| {
            self.exec.yield_point(me);
            self.exec.is_finished(self.tid)
        })
    }
}

/// Modeled `sleep`: duration is meaningless under a model checker, so
/// this is just a yield point (any interleaving a real sleep permits,
/// the scheduler can produce).
pub fn sleep(_dur: Duration) {
    rt::with_ctx(|exec, tid| exec.yield_point(tid));
}

/// Modeled `yield_now`: a plain yield point.
pub fn yield_now() {
    rt::with_ctx(|exec, tid| exec.yield_point(tid));
}
