//! [`RaceCell`]: the model's stand-in for plain (non-atomic) shared
//! data, with FastTrack-style data-race detection.
//!
//! Atomic accesses can interleave arbitrarily without being races; what
//! the C++/Rust memory model forbids is *unsynchronized non-atomic*
//! access. Harnesses express "this data is meant to be protected by the
//! surrounding synchronization" by putting it in a `RaceCell`; the
//! checker then reports a [`crate::Violation::DataRace`] whenever two
//! accesses (at least one a write) are unordered by happens-before.

use std::sync::Mutex;

use crate::rt::{self, Tid, Violation};

/// Access metadata: the last write epoch and every read since it.
#[derive(Debug, Default)]
struct Meta {
    /// `(tid, clock[tid] at write)` of the most recent write.
    last_write: Option<(Tid, u64)>,
    /// `(tid, clock[tid] at read)` for reads since the last write.
    reads: Vec<(Tid, u64)>,
}

/// Shared non-atomic data with happens-before race detection.
///
/// Access is closure-scoped ([`with`](Self::with) /
/// [`with_mut`](Self::with_mut)) so each access is a single yield point
/// with well-defined bounds. The payload lives in a real mutex purely
/// for interior mutability — it is uncontended under the serialized
/// scheduler and provides no synchronization in the *model* (metadata
/// decides what races, not the real lock).
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    data: Mutex<T>,
    meta: Mutex<Meta>,
}

impl<T> RaceCell<T> {
    /// A new cell holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            data: Mutex::new(value),
            meta: Mutex::new(Meta::default()),
        }
    }

    /// Consumes the cell, returning the payload (exclusive access, no
    /// race check needed).
    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Reads through `f`. Reports a data race if the last write is not
    /// ordered before this read.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        rt::with_ctx(|exec, tid| {
            exec.yield_point(tid);
            let race = exec.with_thread(tid, |view| {
                let mut meta = self.meta.lock().unwrap_or_else(|e| e.into_inner());
                if let Some((wt, we)) = meta.last_write {
                    if wt != view.tid() && !view.clock().covers(wt, we) {
                        return Some(Violation::DataRace {
                            thread: view.tid(),
                            other: wt,
                            kind: "write-read",
                        });
                    }
                }
                let epoch = view.clock().get(view.tid());
                meta.reads.push((view.tid(), epoch));
                None
            });
            if let Some(v) = race {
                exec.report_violation(v);
            }
            let guard = self.data.lock().unwrap_or_else(|e| e.into_inner());
            f(&guard)
        })
    }

    /// Writes through `f`. Reports a data race if the last write or any
    /// read since it is not ordered before this write.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        rt::with_ctx(|exec, tid| {
            exec.yield_point(tid);
            let race = exec.with_thread(tid, |view| {
                let mut meta = self.meta.lock().unwrap_or_else(|e| e.into_inner());
                if let Some((wt, we)) = meta.last_write {
                    if wt != view.tid() && !view.clock().covers(wt, we) {
                        return Some(Violation::DataRace {
                            thread: view.tid(),
                            other: wt,
                            kind: "write-write",
                        });
                    }
                }
                for &(rt_, re) in &meta.reads {
                    if rt_ != view.tid() && !view.clock().covers(rt_, re) {
                        return Some(Violation::DataRace {
                            thread: view.tid(),
                            other: rt_,
                            kind: "read-write",
                        });
                    }
                }
                let epoch = view.clock().get(view.tid());
                meta.last_write = Some((view.tid(), epoch));
                meta.reads.clear();
                None
            });
            if let Some(v) = race {
                exec.report_violation(v);
            }
            let mut guard = self.data.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut guard)
        })
    }
}
