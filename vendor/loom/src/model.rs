//! The exploration driver: runs a closure under every schedule the
//! bounded DFS reaches and reports the first violation found.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

use crate::rt::{self, Config, Execution, Violation};

/// Serializes model checks process-wide: the runtime's thread-local
/// context and the quiet panic hook are global, so two concurrent
/// explorations would corrupt each other's schedules.
static MODEL_LOCK: Mutex<()> = Mutex::new(());

/// Result of one exploration.
#[derive(Debug)]
pub struct Report {
    /// Executions actually run.
    pub iterations: usize,
    /// True when the entire (bounded) schedule tree was explored with
    /// no violation; false when a violation stopped exploration or the
    /// iteration cap was hit.
    pub complete: bool,
    /// The first violation found, if any.
    pub violation: Option<Violation>,
}

impl Report {
    /// True when the checker found a violation.
    pub fn found(&self) -> bool {
        self.violation.is_some()
    }
}

/// Exploration limits and modeling knobs.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Abandon exploration (reporting `complete: false`) after this
    /// many executions.
    pub max_iterations: usize,
    /// Fail an execution (as [`Violation::TooManySteps`]) past this
    /// many yield points — spin loops cannot be waited out by a
    /// model checker.
    pub max_steps: usize,
    /// CHESS-style preemption bound; `None` explores the full tree.
    pub preemption_bound: Option<usize>,
    /// Treat every atomic ordering as `Relaxed`. For seeded-bug tests
    /// proving a harness would catch an ordering downgrade.
    pub weaken_orderings: bool,
}

impl Default for Builder {
    fn default() -> Self {
        let cfg = Config::default();
        Self {
            max_iterations: cfg.max_iterations,
            max_steps: cfg.max_steps,
            preemption_bound: cfg.preemption_bound,
            weaken_orderings: cfg.weaken_orderings,
        }
    }
}

/// Restores the pre-exploration panic hook even if the driver unwinds.
struct HookGuard(Option<Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send>>);

impl Drop for HookGuard {
    fn drop(&mut self) {
        if let Some(hook) = self.0.take() {
            panic::set_hook(hook);
        }
    }
}

impl Builder {
    /// A builder with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explores `f` under every reachable schedule (up to the bounds)
    /// and returns what happened. `f` runs once per execution and must
    /// be deterministic given the schedule: create all shared state
    /// inside the closure, take no wall-clock or I/O input.
    pub fn check<F: Fn()>(&self, f: F) -> Report {
        let _serial = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Managed threads unwind on purpose (aborted executions) and on
        // harness assertion failures that are *reported* as violations;
        // the default hook would spam a backtrace per execution.
        let _hook = HookGuard(Some(panic::take_hook()));
        panic::set_hook(Box::new(|_| {}));
        self.explore(&f)
    }

    fn explore<F: Fn()>(&self, f: &F) -> Report {
        let cfg = Config {
            max_iterations: self.max_iterations,
            max_steps: self.max_steps,
            preemption_bound: self.preemption_bound,
            weaken_orderings: self.weaken_orderings,
        };
        let mut prefix = Vec::new();
        let mut iterations = 0usize;
        loop {
            let exec = Execution::new(cfg.clone(), std::mem::take(&mut prefix));
            exec.register_root();
            rt::set_ctx(exec.clone(), 0);
            let caught = panic::catch_unwind(AssertUnwindSafe(|| f()));
            rt::clear_ctx();
            let msg = match caught {
                Ok(()) => None,
                Err(payload) => rt::panic_message(payload),
            };
            exec.finish_thread(0, msg);
            let (violation, next) = exec.drive_to_completion();
            iterations += 1;
            if violation.is_some() {
                return Report {
                    iterations,
                    complete: false,
                    violation,
                };
            }
            match next {
                Some(p) if iterations < cfg.max_iterations => prefix = p,
                Some(_) => {
                    return Report {
                        iterations,
                        complete: false,
                        violation: None,
                    }
                }
                None => {
                    return Report {
                        iterations,
                        complete: true,
                        violation: None,
                    }
                }
            }
        }
    }
}

/// Checks `f` with default bounds and panics on any violation —
/// the drop-in equivalent of upstream `loom::model`.
pub fn model<F: Fn()>(f: F) {
    let report = Builder::new().check(f);
    if let Some(v) = report.violation {
        panic!(
            "loom: model check failed after {} execution(s): {v}",
            report.iterations
        );
    }
}
