//! The model-checking runtime: serialized scheduling over real OS
//! threads, DFS schedule exploration, vector clocks, and violation
//! bookkeeping.
//!
//! ## How an execution runs
//!
//! Exactly one *managed* thread holds the scheduling token at any time;
//! every instrumented operation (atomic access, mutex lock/unlock,
//! spawn, join, `RaceCell` access) is a **yield point** that hands the
//! token back to the scheduler. The scheduler consults a [`Schedule`] —
//! a replayed decision prefix plus a log of the decisions taken — so an
//! entire execution is a deterministic function of the prefix. After
//! each execution the deepest decision with an unexplored alternative is
//! bumped and everything after it is discarded: depth-first search over
//! the tree of schedules (and of weak-memory value choices).
//!
//! ## Memory model
//!
//! * Every atomic location keeps a bounded history of stores, each
//!   tagged with the storing thread's vector clock (`when`) and a
//!   *message* clock (`msg`, the release clock, empty for relaxed
//!   stores).
//! * A load may read any store that coherence and happens-before allow:
//!   at least as new as the newest store that happens-before the loading
//!   thread, and at least as new as anything this thread already read or
//!   wrote at that location. When several stores are eligible the choice
//!   is a schedule decision — this is what lets the checker observe
//!   stale values through `Relaxed` loads.
//! * An `Acquire`-or-stronger load joins the chosen store's `msg` clock
//!   (empty unless the store was `Release`-or-stronger, so a
//!   relaxed-store/acquire-load pair correctly fails to synchronize).
//! * Read-modify-writes always operate on the newest store and carry
//!   the prior store's message clock forward (release sequences).
//! * `SeqCst` is modeled as `AcqRel` plus "reads newest" — the global
//!   SC total order is not modeled separately.
//!
//! Data races are *not* detected on atomics (any interleaving of atomic
//! accesses is defined behavior); they are detected on
//! [`crate::cell::RaceCell`], the stand-in for non-atomic shared data,
//! via epoch comparison against the accessing threads' vector clocks.

use std::collections::BTreeMap;
use std::panic;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Identifier of a managed thread inside one execution (dense, assigned
/// in spawn order, so identical across replays of the same prefix).
pub type Tid = usize;

/// How many past stores each atomic location keeps for stale relaxed
/// loads. Old stores beyond this window are forgotten (their values can
/// no longer be observed), which bounds the value-choice fan-out.
pub const STORE_HISTORY: usize = 4;

/// Allocates process-unique ids for atomics, mutexes and race cells.
static NEXT_OBJECT_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh object id (used to key per-execution lock and last-seen
/// tables; ids are never reused, so state from a previous execution can
/// never alias a newly constructed object).
pub fn new_object_id() -> u64 {
    NEXT_OBJECT_ID.fetch_add(1, StdOrdering::Relaxed)
}

/// One store in an atomic location's bounded history.
#[derive(Clone, Debug)]
pub struct StoreRec {
    /// Stored payload (all atomic types are modeled over `u64`).
    pub val: u64,
    /// Position in modification order (per location, monotonically
    /// increasing, never reused).
    pub seq: u64,
    /// The storing thread's clock at the store — the coherence floor:
    /// a reader whose clock covers `when` cannot read anything older.
    pub when: VClock,
    /// The release clock carried to `Acquire` loads (empty unless the
    /// store was `Release`-or-stronger; RMWs extend it).
    pub msg: VClock,
}

// ---------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------

/// A vector clock over managed-thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The all-zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Component for thread `t` (zero when never ticked).
    pub fn get(&self, t: Tid) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Advances this thread's own component.
    pub fn tick(&mut self, t: Tid) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    /// Component-wise maximum.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// True when the event `(t, epoch)` happens-before a thread holding
    /// this clock.
    pub fn covers(&self, t: Tid, epoch: u64) -> bool {
        self.get(t) >= epoch
    }

    /// True when `self ≤ other` component-wise, i.e. the event this
    /// clock summarizes happens-before a thread holding `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(t, &v)| v <= other.get(t))
    }
}

// ---------------------------------------------------------------------
// Violations
// ---------------------------------------------------------------------

/// Why an execution was rejected.
#[derive(Clone, Debug)]
pub enum Violation {
    /// A managed thread panicked (assertion failure in the harness, or
    /// a panic in the code under test).
    Panic {
        /// Which thread panicked.
        thread: Tid,
        /// Panic payload rendered to text.
        message: String,
    },
    /// Two accesses to a [`crate::cell::RaceCell`] were unordered by
    /// happens-before and at least one was a write.
    DataRace {
        /// The thread whose access detected the race.
        thread: Tid,
        /// The thread that performed the conflicting earlier access.
        other: Tid,
        /// `"write-write"`, `"read-write"` or `"write-read"`.
        kind: &'static str,
    },
    /// Every unfinished thread was blocked (join or mutex cycle, or a
    /// thread parked forever).
    Deadlock {
        /// The blocked thread ids.
        blocked: Vec<Tid>,
    },
    /// One execution exceeded the step budget — almost always an
    /// unbounded spin loop, which a model checker cannot wait out.
    TooManySteps {
        /// The configured budget that was exceeded.
        limit: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Panic { thread, message } => {
                write!(f, "thread {thread} panicked: {message}")
            }
            Violation::DataRace {
                thread,
                other,
                kind,
            } => write!(
                f,
                "data race ({kind}) between thread {other} and thread {thread}"
            ),
            Violation::Deadlock { blocked } => {
                write!(f, "deadlock: threads {blocked:?} are all blocked")
            }
            Violation::TooManySteps { limit } => {
                write!(f, "execution exceeded {limit} steps (unbounded spin loop?)")
            }
        }
    }
}

/// Panic payload used to unwind managed threads when an execution is
/// being aborted; recognized (and swallowed) by the thread wrappers.
pub struct AbortToken;

/// Unwinds the current managed thread as part of an execution abort.
/// Never returns.
fn abort_unwind() -> ! {
    panic::panic_any(AbortToken)
}

// ---------------------------------------------------------------------
// Schedules (DFS state)
// ---------------------------------------------------------------------

/// One recorded decision: the alternatives that were available and the
/// index that was chosen. Decisions with a single alternative are never
/// recorded (they carry no branching).
#[derive(Clone, Debug)]
struct Decision {
    alts: Vec<u64>,
    chosen: usize,
}

/// Replay prefix plus decision log for one execution.
#[derive(Debug, Default)]
pub struct Schedule {
    prefix: Vec<u64>,
    log: Vec<Decision>,
    pos: usize,
}

impl Schedule {
    fn with_prefix(prefix: Vec<u64>) -> Self {
        Self {
            prefix,
            log: Vec::new(),
            pos: 0,
        }
    }

    /// Picks one of `alts` (non-empty, deterministic order): the replay
    /// prefix while it lasts, then the first alternative. Records the
    /// decision when there is a real choice.
    fn choose(&mut self, alts: Vec<u64>) -> u64 {
        debug_assert!(!alts.is_empty(), "choose() needs at least one alternative");
        if alts.len() == 1 {
            return alts[0];
        }
        let chosen = if self.pos < self.prefix.len() {
            let want = self.prefix[self.pos];
            // A prefix choice must still be available; schedules are
            // deterministic functions of the prefix, so a mismatch means
            // the harness itself is nondeterministic (wall clock, I/O,
            // process-global state) — surface that loudly.
            alts.iter().position(|&a| a == want).unwrap_or_else(|| {
                panic!(
                    "loom: nondeterministic execution — replayed choice {want} \
                     not among alternatives {alts:?}; harnesses must create all \
                     state inside the model closure and avoid wall-clock input"
                )
            })
        } else {
            0
        };
        let value = alts[chosen];
        self.log.push(Decision { alts, chosen });
        self.pos += 1;
        value
    }

    /// The prefix driving the *next* execution: bump the deepest
    /// decision with an unexplored alternative. `None` when the whole
    /// tree has been explored.
    fn next_prefix(&self) -> Option<Vec<u64>> {
        for depth in (0..self.log.len()).rev() {
            let d = &self.log[depth];
            if d.chosen + 1 < d.alts.len() {
                let mut prefix: Vec<u64> =
                    self.log[..depth].iter().map(|d| d.alts[d.chosen]).collect();
                prefix.push(d.alts[d.chosen + 1]);
                return Some(prefix);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------

/// Exploration limits and modeling knobs (see `crate::model::Builder`
/// for the user-facing API and defaults).
#[derive(Clone, Debug)]
pub struct Config {
    /// Abandon exploration (reporting it incomplete) after this many
    /// executions.
    pub max_iterations: usize,
    /// Fail an execution that takes more than this many yield points.
    pub max_steps: usize,
    /// CHESS-style preemption bound: once an execution has preempted a
    /// runnable thread this many times, later decisions keep the
    /// current thread running while it can. `None` = full DFS.
    pub preemption_bound: Option<usize>,
    /// Treat every atomic ordering as `Relaxed`. Used by seeded-bug
    /// tests to prove a harness would catch an ordering downgrade.
    pub weaken_orderings: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_iterations: 100_000,
            max_steps: 20_000,
            preemption_bound: None,
            weaken_orderings: false,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockOn {
    /// Waiting for a thread to finish.
    Join(Tid),
    /// Waiting for a mutex (by object id) to be released.
    Lock(u64),
    /// Waiting on a condition variable (by object id). Never woken by
    /// state re-evaluation — only an explicit notify makes the thread
    /// runnable again, so a lost wakeup surfaces as a deadlock.
    Cond(u64),
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    clock: VClock,
    /// Newest store sequence this thread has observed per atomic
    /// location (coherence: reads never go backwards).
    last_seen: BTreeMap<u64, u64>,
}

#[derive(Debug, Default)]
struct LockState {
    held_by: Option<Tid>,
    /// Clock released by the last unlock (lock acquisition joins it).
    clock: VClock,
}

/// State of one condition variable: the threads currently blocked in
/// `wait`, in wait order. (Which waiter a `notify_one` wakes is still a
/// schedule decision, not FIFO.)
#[derive(Debug, Default)]
struct CondvarState {
    waiters: Vec<Tid>,
}

/// All mutable state of one execution, behind [`Execution::state`].
#[derive(Debug)]
pub struct ExecState {
    cfg: Config,
    threads: Vec<ThreadState>,
    current: Option<Tid>,
    schedule: Schedule,
    locks: BTreeMap<u64, LockState>,
    condvars: BTreeMap<u64, CondvarState>,
    violation: Option<Violation>,
    aborting: bool,
    steps: usize,
    preemptions: usize,
}

/// One execution: shared by the driver and every managed thread.
#[derive(Debug)]
pub struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

impl Execution {
    /// A fresh execution replaying `prefix`.
    pub fn new(cfg: Config, prefix: Vec<u64>) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(ExecState {
                cfg,
                threads: Vec::new(),
                current: None,
                schedule: Schedule::with_prefix(prefix),
                locks: BTreeMap::new(),
                condvars: BTreeMap::new(),
                violation: None,
                aborting: false,
                steps: 0,
                preemptions: 0,
            }),
            cv: Condvar::new(),
        })
    }

    fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        // INVARIANT: the state mutex is only poisoned if this module
        // itself panicked while holding it, which is a checker bug; the
        // state is still structurally valid for the abort path.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers the root thread (tid 0) and marks it current.
    pub fn register_root(&self) -> Tid {
        let mut st = self.lock_state();
        debug_assert!(st.threads.is_empty());
        let mut clock = VClock::new();
        clock.tick(0);
        st.threads.push(ThreadState {
            status: Status::Runnable,
            clock,
            last_seen: BTreeMap::new(),
        });
        st.current = Some(0);
        0
    }

    /// Registers a child thread spawned by `parent`; the child starts
    /// runnable (but not current) with the parent's clock.
    pub fn register_child(&self, parent: Tid) -> Tid {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        let mut clock = st.threads[parent].clock.clone();
        clock.tick(tid);
        st.threads.push(ThreadState {
            status: Status::Runnable,
            clock,
            last_seen: BTreeMap::new(),
        });
        tid
    }

    /// Blocks the calling OS thread until the scheduler makes `tid`
    /// current (the first grant for a freshly spawned thread).
    pub fn wait_for_grant(&self, tid: Tid) {
        let mut st = self.lock_state();
        while st.current != Some(tid) && !st.aborting {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborting {
            drop(st);
            abort_unwind();
        }
    }

    /// Records a violation (first one wins) and flips the execution
    /// into abort mode, waking everyone.
    fn report_violation_locked(&self, st: &mut ExecState, v: Violation) {
        if st.violation.is_none() {
            st.violation = Some(v);
        }
        st.aborting = true;
        st.current = None;
        self.cv.notify_all();
    }

    /// Records a violation from a managed thread and unwinds it.
    pub fn report_violation(&self, v: Violation) -> ! {
        let mut st = self.lock_state();
        self.report_violation_locked(&mut st, v);
        drop(st);
        abort_unwind()
    }

    /// Wakes blocked threads whose condition now holds, then hands the
    /// token to one runnable thread per the schedule (or detects
    /// completion / deadlock). Caller passes the thread giving up the
    /// token (`prev`), or `None` when it just finished.
    fn schedule_next(&self, st: &mut ExecState, prev: Option<Tid>) {
        // Re-evaluate blocked threads.
        for tid in 0..st.threads.len() {
            if let Status::Blocked(on) = st.threads[tid].status {
                let ready = match on {
                    BlockOn::Join(t) => st.threads[t].status == Status::Finished,
                    BlockOn::Lock(id) => st.locks.get(&id).is_none_or(|l| l.held_by.is_none()),
                    // Condvar waiters are only woken by an explicit
                    // notify (in `condvar_notify`), never by state
                    // re-evaluation — that is what makes a lost wakeup
                    // observable as a deadlock.
                    BlockOn::Cond(_) => false,
                };
                if ready {
                    st.threads[tid].status = Status::Runnable;
                }
            }
        }
        let runnable: Vec<Tid> = (0..st.threads.len())
            .filter(|&t| st.threads[t].status == Status::Runnable)
            .collect();
        if runnable.is_empty() {
            let blocked: Vec<Tid> = (0..st.threads.len())
                .filter(|&t| matches!(st.threads[t].status, Status::Blocked(_)))
                .collect();
            if blocked.is_empty() {
                // All threads finished: execution complete.
                st.current = None;
                self.cv.notify_all();
                return;
            }
            self.report_violation_locked(st, Violation::Deadlock { blocked });
            return;
        }
        // Preemption bounding: once the budget is spent, keep the
        // previous thread running whenever it still can.
        let prev_runnable = prev.is_some_and(|p| runnable.contains(&p));
        let budget_spent = st.cfg.preemption_bound.is_some_and(|b| st.preemptions >= b);
        let alts: Vec<u64> = if budget_spent && prev_runnable {
            // CAST: tids are tiny (thread counts), always fit in u64
            vec![prev.unwrap_or(0) as u64]
        } else {
            runnable.iter().map(|&t| t as u64).collect() // CAST: tiny tid
        };
        let chosen = st.schedule.choose(alts) as usize; // CAST: round-trips a tid
        if prev_runnable && prev != Some(chosen) {
            st.preemptions += 1;
        }
        st.current = Some(chosen);
        self.cv.notify_all();
    }

    /// Core yield point: give up the token, let the scheduler pick the
    /// next thread (possibly this one again), and return once this
    /// thread is granted the token back. Also ticks the thread's clock.
    pub fn yield_point(&self, tid: Tid) {
        let mut st = self.lock_state();
        if st.aborting {
            drop(st);
            abort_unwind();
        }
        st.steps += 1;
        if st.steps > st.cfg.max_steps {
            let limit = st.cfg.max_steps;
            self.report_violation_locked(&mut st, Violation::TooManySteps { limit });
            drop(st);
            abort_unwind();
        }
        st.threads[tid].clock.tick(tid);
        self.schedule_next(&mut st, Some(tid));
        while st.current != Some(tid) && !st.aborting {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborting {
            drop(st);
            abort_unwind();
        }
    }

    /// Blocks `tid` until `target` finishes, then joins its final clock
    /// into the joiner (the synchronizes-with edge of `join()`).
    pub fn join_thread(&self, tid: Tid, target: Tid) {
        let mut st = self.lock_state();
        loop {
            if st.aborting {
                drop(st);
                abort_unwind();
            }
            if st.threads[target].status == Status::Finished {
                let target_clock = st.threads[target].clock.clone();
                st.threads[tid].clock.join(&target_clock);
                return;
            }
            st.threads[tid].status = Status::Blocked(BlockOn::Join(target));
            self.schedule_next(&mut st, Some(tid));
            while st.current != Some(tid) && !st.aborting {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// True when `target` has finished (non-blocking peek; used by
    /// `JoinHandle::is_finished`).
    pub fn is_finished(&self, target: Tid) -> bool {
        let st = self.lock_state();
        st.threads[target].status == Status::Finished
    }

    /// Marks `tid` finished and hands the token on. `panic_message` is
    /// set when the thread unwound with a non-abort panic.
    pub fn finish_thread(&self, tid: Tid, panic_message: Option<String>) {
        let mut st = self.lock_state();
        st.threads[tid].status = Status::Finished;
        if let Some(message) = panic_message {
            self.report_violation_locked(
                &mut st,
                Violation::Panic {
                    thread: tid,
                    message,
                },
            );
            return;
        }
        if st.aborting {
            self.cv.notify_all();
            return;
        }
        self.schedule_next(&mut st, None);
    }

    /// Acquires `lock_id` for `tid`, blocking through the scheduler
    /// while it is held; joins the releaser's clock on acquisition.
    pub fn mutex_acquire(&self, tid: Tid, lock_id: u64) {
        self.yield_point(tid);
        let mut st = self.lock_state();
        loop {
            if st.aborting {
                drop(st);
                abort_unwind();
            }
            let free = st.locks.get(&lock_id).is_none_or(|l| l.held_by.is_none());
            if free {
                let entry = st.locks.entry(lock_id).or_default();
                entry.held_by = Some(tid);
                let clock = entry.clock.clone();
                st.threads[tid].clock.join(&clock);
                return;
            }
            st.threads[tid].status = Status::Blocked(BlockOn::Lock(lock_id));
            self.schedule_next(&mut st, Some(tid));
            while st.current != Some(tid) && !st.aborting {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Releases `lock_id`, publishing the holder's clock to the next
    /// acquirer. Scheduling-silent: callers yield separately, because a
    /// guard dropped during panic unwinding must not re-enter the
    /// scheduler (a second unwind there would abort the process).
    pub fn mutex_release(&self, tid: Tid, lock_id: u64) {
        let mut st = self.lock_state();
        let holder_clock = st.threads[tid].clock.clone();
        let entry = st.locks.entry(lock_id).or_default();
        entry.held_by = None;
        entry.clock = holder_clock;
    }

    /// Atomically releases `lock_id` (publishing the holder's clock,
    /// exactly like [`Self::mutex_release`]) and blocks `tid` on the
    /// condition variable `cv_id` until a notify wakes it. The
    /// release-and-block is one step under the state lock, so a notify
    /// can never slip between them (no lost wakeup *inside the model*;
    /// lost wakeups in the code under test still deadlock honestly).
    ///
    /// On return the thread has been woken and holds the token; the
    /// caller is responsible for re-acquiring the mutex.
    pub fn condvar_wait(&self, tid: Tid, cv_id: u64, lock_id: u64) {
        self.yield_point(tid);
        let mut st = self.lock_state();
        if st.aborting {
            drop(st);
            abort_unwind();
        }
        // Release the mutex, publishing this thread's clock to the next
        // acquirer (same edge as mutex_release).
        let holder_clock = st.threads[tid].clock.clone();
        let entry = st.locks.entry(lock_id).or_default();
        entry.held_by = None;
        entry.clock = holder_clock;
        // Park on the condvar.
        st.condvars.entry(cv_id).or_default().waiters.push(tid);
        st.threads[tid].status = Status::Blocked(BlockOn::Cond(cv_id));
        self.schedule_next(&mut st, Some(tid));
        while st.current != Some(tid) && !st.aborting {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborting {
            drop(st);
            abort_unwind();
        }
    }

    /// Wakes one waiter (`all == false`; which one is a schedule
    /// decision) or every waiter (`all == true`) of `cv_id`. A notify
    /// with no waiters is lost, exactly like the real primitive — that
    /// asymmetry is what dropped-wakeup seeded bugs rely on. The
    /// notifier's clock is joined into each woken thread (the
    /// happens-before edge every practical condvar implementation
    /// provides through its internal lock).
    pub fn condvar_notify(&self, tid: Tid, cv_id: u64, all: bool) {
        self.yield_point(tid);
        let mut st = self.lock_state();
        if st.aborting {
            drop(st);
            abort_unwind();
        }
        let notifier_clock = st.threads[tid].clock.clone();
        let waiters: Vec<Tid> = st
            .condvars
            .get(&cv_id)
            .map(|cv| cv.waiters.clone())
            .unwrap_or_default();
        let woken: Vec<Tid> = if waiters.is_empty() {
            Vec::new()
        } else if all {
            waiters
        } else {
            // CAST: tids are tiny (thread counts), always fit in u64
            let alts: Vec<u64> = waiters.iter().map(|&w| w as u64).collect();
            vec![st.schedule.choose(alts) as usize] // CAST: round-trips a tid
        };
        if let Some(cv) = st.condvars.get_mut(&cv_id) {
            cv.waiters.retain(|w| !woken.contains(w));
        }
        for w in woken {
            st.threads[w].status = Status::Runnable;
            st.threads[w].clock.join(&notifier_clock);
        }
    }

    /// Runs `f` with this thread's mutable state and the schedule,
    /// while holding the token (no other managed thread can interleave).
    /// Used by the atomic and race-cell operations after their yield
    /// point.
    pub fn with_thread<R>(&self, tid: Tid, f: impl FnOnce(&mut ThreadView<'_>) -> R) -> R {
        let mut st = self.lock_state();
        if st.aborting {
            drop(st);
            abort_unwind();
        }
        let mut view = ThreadView { st: &mut st, tid };
        f(&mut view)
    }

    /// Waits (on the driver thread) until every managed thread has
    /// finished, then returns the violation and the next DFS prefix.
    pub fn drive_to_completion(&self) -> (Option<Violation>, Option<Vec<u64>>) {
        let mut st = self.lock_state();
        loop {
            let all_done =
                !st.threads.is_empty() && st.threads.iter().all(|t| t.status == Status::Finished);
            if all_done {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let violation = st.violation.clone();
        // A violating execution's tail decisions are artifacts of the
        // abort; still use the log — exploration stops at the first
        // violation anyway.
        let next = st.schedule.next_prefix();
        (violation, next)
    }
}

/// Mutable access to one thread's model state plus the schedule,
/// handed out by [`Execution::with_thread`] under the token.
pub struct ThreadView<'a> {
    st: &'a mut ExecState,
    tid: Tid,
}

impl ThreadView<'_> {
    /// This thread's id.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Whether orderings are being forcibly weakened to `Relaxed`.
    pub fn weaken_orderings(&self) -> bool {
        self.st.cfg.weaken_orderings
    }

    /// This thread's vector clock (shared reference).
    pub fn clock(&self) -> &VClock {
        &self.st.threads[self.tid].clock
    }

    /// Joins `other` into this thread's clock.
    pub fn join_clock(&mut self, other: &VClock) {
        self.st.threads[self.tid].clock.join(other);
    }

    /// Newest store sequence observed at `loc` (coherence floor).
    pub fn last_seen(&self, loc: u64) -> u64 {
        self.st.threads[self.tid]
            .last_seen
            .get(&loc)
            .copied()
            .unwrap_or(0)
    }

    /// Records that this thread observed store `seq` at `loc`.
    pub fn record_seen(&mut self, loc: u64, seq: u64) {
        let e = self.st.threads[self.tid].last_seen.entry(loc).or_insert(0);
        *e = (*e).max(seq);
    }

    /// Makes a value choice among `alts` (schedule decision).
    pub fn choose(&mut self, alts: Vec<u64>) -> u64 {
        self.st.schedule.choose(alts)
    }
}

// ---------------------------------------------------------------------
// Thread-local execution context
// ---------------------------------------------------------------------

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Execution>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs the execution context on the current OS thread.
pub fn set_ctx(exec: Arc<Execution>, tid: Tid) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

/// Clears the execution context.
pub fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Runs `f` with the current execution context. Panics (with a
/// diagnostic, not an abort) when called outside `loom::model`, which
/// is what happens if instrumented facade primitives are exercised by
/// an ordinary test while `--cfg tkdc_model_check` is active.
pub fn with_ctx<R>(f: impl FnOnce(&Arc<Execution>, Tid) -> R) -> R {
    CTX.with(|c| {
        let borrow = c.borrow();
        match borrow.as_ref() {
            Some((exec, tid)) => f(exec, *tid),
            // INVARIANT: misuse diagnostic — instrumented primitives are
            // only callable inside a model run by construction of the
            // model-check test suite.
            None => panic!(
                "tkdc-sync model-check primitives used outside loom::model(); \
                 run concurrency code under `loom::model(|| ...)` in the \
                 model-check suite"
            ),
        }
    })
}

/// True when the current OS thread is a managed thread of a live
/// execution.
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Classifies a caught panic payload: `None` for an [`AbortToken`]
/// (already-reported violation), `Some(message)` for a real panic.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> Option<String> {
    if payload.downcast_ref::<AbortToken>().is_some() {
        return None;
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return Some((*s).to_string());
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return Some(s.clone());
    }
    Some("<non-string panic payload>".to_string())
}
