//! Minimal, dependency-free reimplementation of the subset of the
//! [`criterion`](https://docs.rs/criterion) API used by this workspace's
//! benches: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up, then
//! timed over `sample_size` samples; the median per-iteration time is
//! printed. There is no statistical analysis, plotting, or baseline
//! storage — the goal is that `cargo bench` compiles, runs, and produces
//! usable relative numbers in a hermetic environment.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark named `name`, parameterized by `parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Number of timed samples to collect.
    samples: usize,
    /// Median per-iteration duration of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Call `routine` repeatedly and record its median execution time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a sizing probe: aim for ~1ms per sample so fast
        // routines are timed over many iterations.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (Duration::from_millis(1).as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u32;

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            times.push(start.elapsed() / iters_per_sample);
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_median: Duration::ZERO,
    };
    f(&mut b);
    println!("{label:<60} time: {:?}", b.last_median);
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f` against `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
    }

    /// Time `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
    }

    /// End the group (upstream finalizes reports here; we do nothing).
    pub fn finish(self) {}
}

/// Top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Time a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), 20, &mut f);
        self
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
