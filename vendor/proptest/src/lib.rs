//! Minimal, dependency-free reimplementation of the subset of the
//! [`proptest`](https://docs.rs/proptest) API used by this workspace.
//!
//! The real crate cannot be fetched in the hermetic build environment, so
//! this shim provides source-compatible replacements for:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * numeric [`Range`](std::ops::Range) / [`RangeInclusive`](std::ops::RangeInclusive)
//!   strategies,
//! * [`collection::vec`] with `usize`, `Range<usize>` and
//!   `RangeInclusive<usize>` size specifications,
//! * [`arbitrary::any`],
//! * [`test_runner::Config`] (re-exported as `ProptestConfig`),
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros.
//!
//! Differences from upstream: no shrinking (the failing case index and the
//! deterministic per-test seed are printed instead), and value generation
//! is uniform rather than bias-weighted toward edge cases.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic PRNG and run configuration.

    /// Run configuration; only the `cases` knob is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// SplitMix64-based deterministic generator. Each `(test, case)` pair
    /// gets an independent stream so any failing case can be re-run alone.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stream for case number `case` of the test whose stable hash is
        /// `test_hash`.
        pub fn for_case(test_hash: u64, case: u32) -> Self {
            TestRng {
                state: test_hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next raw 64-bit output (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, 1]` (both endpoints reachable).
        pub fn unit_f64_inclusive(&mut self) -> f64 {
            const M: u64 = (1u64 << 53) - 1;
            (self.next_u64() & M) as f64 / M as f64
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is negligible for the small bounds used in tests.
            self.next_u64() % bound
        }
    }

    /// FNV-1a hash of a test path, used to seed its RNG stream.
    pub fn hash_test_name(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draw one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty f64 range strategy");
            lo + rng.unit_f64_inclusive() * (hi - lo)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    //! `any::<T>()` — unconstrained generation for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical unconstrained strategy.
    pub trait Arbitrary {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy over every value of `T`; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mix finite values with the special values real property tests
            // care about: NaN, infinities, signed zero.
            match rng.below(16) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -0.0,
                _ => (rng.unit_f64() - 0.5) * 2e9,
            }
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size` (a `usize`, `Range<usize>`, or
    /// `RangeInclusive<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// item expands to a `#[test]` that runs `body` against `ProptestConfig::cases`
/// generated inputs; the first panic is reported with its case index and
/// deterministic seed, then re-raised.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let test_hash = $crate::test_runner::hash_test_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(test_hash, case);
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} (test hash {:#x})",
                        stringify!($name),
                        case,
                        config.cases,
                        test_hash,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// `assert!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let x = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&x));
            let n = (3usize..=7).generate(&mut rng);
            assert!((3..=7).contains(&n));
            let b = (1u8..=255).generate(&mut rng);
            assert!(b >= 1);
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = TestRng::for_case(2, 0);
        for _ in 0..200 {
            let v = crate::collection::vec(0.0f64..1.0, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(-1.0f64..1.0, 10);
        let a = strat.generate(&mut TestRng::for_case(42, 7));
        let b = strat.generate(&mut TestRng::for_case(42, 7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_runs((a, b) in (0u32..100).prop_flat_map(|a| (a..a + 10).prop_map(move |b| (a, b)))) {
            prop_assert!(b >= a && b < a + 10);
        }
    }
}
